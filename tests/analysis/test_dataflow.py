"""Unit coverage for the inference layer the rule pass is built on."""

import ast

from repro.analysis import build_scopes
from repro.analysis.dataflow import (
    SIM_TIME,
    WALL_CLOCK,
    attribute_set_names,
    classify_annotation,
    classify_value,
    dedup_suppressed_id_calls,
    expr_time_domain,
    is_commutative_accumulation_loop,
    sim_time_accumulations,
    symbol_types,
    unpicklable_worker_callable,
    walk_scope_body,
)


def built(source):
    tree = ast.parse(source)
    return tree, build_scopes(tree)


def annotation(text):
    return ast.parse(text, mode="eval").body


def rhs(text):
    return ast.parse(text, mode="eval").body


# -- container classification -------------------------------------------------


def test_classify_annotation():
    assert classify_annotation(annotation("Set[int]")) == "set"
    assert classify_annotation(annotation("typing.FrozenSet[str]")) == "set"
    assert classify_annotation(annotation("List[int]")) == "list"
    assert classify_annotation(annotation("Sequence[float]")) == "list"
    assert classify_annotation(annotation("Dict[str, int]")) == "dict"
    assert classify_annotation(annotation("'Set[int]'")) == "set"  # string form
    assert classify_annotation(annotation("int")) is None
    assert classify_annotation(None) is None


def test_classify_value():
    assert classify_value(rhs("{1, 2}")) == "set"
    assert classify_value(rhs("set(xs)")) == "set"
    assert classify_value(rhs("{x for x in xs}")) == "set"
    assert classify_value(rhs("[1]")) == "list"
    assert classify_value(rhs("sorted(xs)")) == "list"
    assert classify_value(rhs("{}")) == "dict"
    assert classify_value(rhs("dict(a=1)")) == "dict"
    assert classify_value(rhs("make()")) is None
    assert classify_value(None) is None


def test_symbol_types_union_per_scope():
    _, builder = built(
        "def f():\n"
        "    xs = set()\n"
        "    xs = sorted(xs)\n"
    )
    function = builder.module_scope.children[0]
    assert symbol_types(function.symbols["xs"]) == {"set", "list"}


def test_attribute_set_names_are_module_wide():
    _, builder = built(
        "class T:\n"
        "    def __init__(self):\n"
        "        self._engaged = set()\n"
        "        self._order = []\n"
    )
    assert attribute_set_names(builder.attribute_bindings) == {"_engaged"}


# -- time domains -------------------------------------------------------------


def test_expr_time_domain_tags():
    source = (
        "start = kernel.now\n"
        "wall = time.time()\n"
        "delta = start + 1.0\n"
    )
    tree, builder = built(source)
    module = builder.module_scope
    values = {node.targets[0].id: node.value for node in tree.body}
    assert expr_time_domain(values["start"], module) == SIM_TIME
    assert expr_time_domain(values["wall"], module) == WALL_CLOCK
    # Arithmetic on a sim-tagged name stays sim-tagged (through the binding).
    assert expr_time_domain(values["delta"], module) == SIM_TIME


def test_sim_time_accumulation_detection():
    _, builder = built(
        "def poll(kernel):\n"
        "    t = kernel.now\n"
        "    t += 0.1\n"
        "    steps = 0\n"
        "    steps += 1\n"
    )
    function = builder.module_scope.children[0]
    nodes = sim_time_accumulations(function)
    assert [node.lineno for node in nodes] == [3]  # t += only, not steps


# -- scope-local walking ------------------------------------------------------


def test_walk_scope_body_stops_at_nested_scopes():
    tree, _ = built(
        "def outer():\n"
        "    a = 1\n"
        "    def inner():\n"
        "        hidden = 2\n"
        "    b = [x for x in range(3)]\n"
    )
    outer = tree.body[0]
    names = {n.id for n in walk_scope_body(outer) if isinstance(n, ast.Name)}
    assert "a" in names and "b" in names
    assert "hidden" not in names          # nested function is a boundary
    assert "x" in names                   # comprehensions are not


# -- DET004/DET005 precision helpers ------------------------------------------


def test_commutative_loop_classification():
    def loop(source):
        return ast.parse(source).body[0]

    assert is_commutative_accumulation_loop(
        loop("for i in xs:\n    mask |= 1 << i\n"))
    assert is_commutative_accumulation_loop(
        loop("for i in xs:\n    mask ^= i\n    mask &= i\n"))
    assert not is_commutative_accumulation_loop(
        loop("for i in xs:\n    total += i\n"))       # float + is ordered
    assert not is_commutative_accumulation_loop(
        loop("for i in xs:\n    out.append(i)\n"))    # arbitrary statement
    assert not is_commutative_accumulation_loop(
        loop("for i in xs:\n    mask |= i\nelse:\n    mask = 0\n"))


def test_dedup_suppression_requires_membership_only_and_sort():
    source = (
        "def visible(rs):\n"
        "    seen = set()\n"
        "    out = []\n"
        "    for r in rs:\n"
        "        if id(r) in seen:\n"
        "            continue\n"
        "        seen.add(id(r))\n"
        "        out.append(r)\n"
        "    out.sort()\n"
        "    return out\n"
    )
    tree, builder = built(source)
    function_node = tree.body[0]
    function = builder.scopes[function_node]
    suppressed = dedup_suppressed_id_calls(function_node, function)
    id_calls = [n for n in ast.walk(function_node)
                if isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name) and n.func.id == "id"]
    assert suppressed == {id(n) for n in id_calls}

    # Remove the sort: nothing is suppressed.
    no_sort = source.replace("    out.sort()\n", "")
    tree, builder = built(no_sort)
    function_node = tree.body[0]
    assert not dedup_suppressed_id_calls(
        function_node, builder.scopes[function_node])

    # Iterate the set afterwards: the extra load disqualifies it.
    leaky = source.replace("    return out\n",
                           "    return [k for k in seen]\n")
    tree, builder = built(leaky)
    function_node = tree.body[0]
    assert not dedup_suppressed_id_calls(
        function_node, builder.scopes[function_node])


# -- FRK002 helper ------------------------------------------------------------


def test_unpicklable_worker_callable():
    source = (
        "def run(pool):\n"
        "    def local_job():\n"
        "        pass\n"
        "    handler = lambda: None\n"
        "    pool.submit(local_job)\n"
        "    pool.submit(lambda: 1)\n"
        "    pool.submit(handler)\n"
        "    pool.submit(module_job)\n"
    )
    tree, builder = built(source)
    function_node = tree.body[0]
    function = builder.scopes[function_node]
    calls = sorted(
        (n for n in walk_scope_body(function_node)
         if isinstance(n, ast.Call)
         and isinstance(n.func, ast.Attribute)
         and n.func.attr == "submit"),
        key=lambda n: n.lineno,
    )
    flagged = [unpicklable_worker_callable(c, function) for c in calls]
    assert flagged[0] is not None   # nested function
    assert flagged[1] is not None   # inline lambda
    assert flagged[2] is not None   # lambda-assigned name
    assert flagged[3] is None       # unresolved (module-level elsewhere)

"""The incremental cache: hits, busts, corruption, and parallel identity."""

import json

from repro.analysis import AnalysisCache, analyze_paths
from repro.analysis.cache import CACHE_SCHEMA, analyze_paths_incremental


BAD_SOURCE = (
    "import random\n"
    "\n"
    "\n"
    "def pick(options):\n"
    "    return random.choice(options)\n"
)


def write_tree(root):
    tree = root / "pkg"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    (tree / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    return tree


def test_cold_then_warm_runs_are_identical(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold, cold_stats = analyze_paths_incremental([tree], cache=cache)
    warm, warm_stats = analyze_paths_incremental([tree], cache=cache)
    assert cold == warm == analyze_paths([tree])
    assert cold_stats.analyzed == 2 and cold_stats.cached == 0
    assert warm_stats.analyzed == 0 and warm_stats.cached == 2
    assert [f.code for f in cold] == ["DET001", "DET001"]


def test_source_change_busts_only_that_file(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    (tree / "clean.py").write_text("VALUE = 2\n", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 1 and stats.cached == 1
    assert findings == analyze_paths([tree])


def test_ruleset_version_change_busts_everything(tmp_path, monkeypatch):
    from repro.analysis import rules

    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    monkeypatch.setattr(rules, "RULESET_VERSION",
                        rules.RULESET_VERSION + ":bumped")
    _, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 2 and stats.cached == 0


def test_analysis_version_bump_busts_everything(tmp_path, monkeypatch):
    # The version was bumped (to 7) when the batch-pipeline surfaces
    # joined the VEC parity roots; RULESET_VERSION embeds it, so a bump
    # alone — same rules digest, same sources — must invalidate every
    # cached entry, or stale findings from the narrower root set would
    # survive the rule change.
    from repro.analysis import rules

    assert rules.ANALYSIS_VERSION >= 7
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    digest = rules.RULESET_VERSION.split(":", 1)[1]
    monkeypatch.setattr(
        rules, "RULESET_VERSION", f"{rules.ANALYSIS_VERSION + 1}:{digest}"
    )
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 2 and stats.cached == 0
    assert findings == analyze_paths([tree])


def test_corrupt_entry_is_a_cache_miss(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    for entry in cache.root.glob("*.json"):
        entry.write_text("{not json", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 2 and stats.cached == 0
    assert findings == analyze_paths([tree])
    # ... and the re-store repaired the entries.
    _, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.cached == 2


def test_parallel_and_serial_findings_are_identical(tmp_path):
    tree = write_tree(tmp_path)
    for extra in range(4):
        (tree / f"extra_{extra}.py").write_text(
            f"import random  # {extra}\n", encoding="utf-8")
    serial, _ = analyze_paths_incremental([tree], jobs=1)
    parallel, stats = analyze_paths_incremental([tree], jobs=3)
    assert parallel == serial == analyze_paths([tree])
    assert stats.jobs == 3


def test_entries_are_self_describing(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    entries = sorted(cache.root.glob("*.json"))
    assert len(entries) == 2
    for entry_path in entries:
        entry = json.loads(entry_path.read_text(encoding="utf-8"))
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["path"].endswith(".py")
        assert "digest" in entry and "findings" in entry


def test_stats_render_mentions_hits_and_jobs(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    _, stats = analyze_paths_incremental([tree], jobs=2, cache=cache)
    text = stats.render()
    assert "2 file(s)" in text
    assert "jobs=2" in text


# -- dependency-aware invalidation (cache.v2) --------------------------------

HELPER_SOURCE = (
    "import time\n"
    "\n"
    "\n"
    "def now():\n"
    "    return time.time()\n"
)

CALLER_SOURCE = (
    "from helper import now\n"
    "\n"
    "\n"
    "def run():\n"
    "    return now()\n"
)


def write_linked_tree(root):
    tree = root / "proj"
    tree.mkdir()
    (tree / "helper.py").write_text(HELPER_SOURCE, encoding="utf-8")
    (tree / "caller.py").write_text(CALLER_SOURCE, encoding="utf-8")
    (tree / "other.py").write_text("VALUE = 1\n", encoding="utf-8")
    return tree


def entries_by_file(cache):
    out = {}
    for entry_path in cache.root.glob("*.json"):
        raw = entry_path.read_text(encoding="utf-8")
        entry = json.loads(raw)
        out[entry["path"].rsplit("/", 1)[-1]] = raw
    return out


def test_cross_module_findings_flow_through_the_cache(tmp_path):
    tree = write_linked_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold, cold_stats = analyze_paths_incremental([tree], cache=cache)
    warm, warm_stats = analyze_paths_incremental([tree], cache=cache)
    assert cold == warm == analyze_paths([tree])
    assert not cold_stats.project_cached
    assert warm_stats.project_cached
    # The interprocedural DET002 lands at the *caller* call site.
    assert any(f.code == "DET002" and f.path.endswith("caller.py")
               for f in cold)


def test_leaf_edit_invalidates_exactly_its_dependents(tmp_path):
    tree = write_linked_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    before = entries_by_file(cache)

    # The leaf loses its taint; only the leaf re-analyzes per-file, but
    # its dependent's project section must be refreshed too.
    (tree / "helper.py").write_text(
        "def now():\n    return 0.0\n", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 1 and stats.cached == 2
    assert not stats.project_cached
    assert not any(f.code == "DET002" for f in findings)

    after = entries_by_file(cache)
    changed = {name for name in before if before[name] != after[name]}
    assert changed == {"helper.py", "caller.py"}
    # The bystander's entry file is byte-identical — its cache was
    # neither invalidated nor rewritten.
    assert before["other.py"] == after["other.py"]


def write_parity_tree(root):
    """A miniature src layout: the shim leaf plus a parity dependent."""
    tree = root / "tree"
    (tree / "repro" / "util").mkdir(parents=True)
    (tree / "repro" / "net").mkdir(parents=True)
    (tree / "repro" / "util" / "array.py").write_text(
        "numpy = None\n", encoding="utf-8")
    (tree / "repro" / "net" / "prop.py").write_text(
        "from repro.util import array\n"
        "\n"
        "\n"
        "def delivery_probabilities(distances):\n"
        "    np = array.numpy\n"
        "    return np.hypot(distances, distances)\n",
        encoding="utf-8",
    )
    (tree / "repro" / "idle.py").write_text("VALUE = 1\n", encoding="utf-8")
    return tree


def test_shim_leaf_edit_invalidates_exactly_its_vec_dependents(tmp_path):
    tree = write_parity_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold, _ = analyze_paths_incremental([tree], cache=cache)
    assert any(f.code == "VEC001" and f.path.endswith("prop.py")
               for f in cold)
    before = entries_by_file(cache)

    # Touch the shim leaf only: the dependent's per-file findings stay
    # cached, but its project key (which folds in the leaf's digest)
    # moves, so its VEC section is recomputed — the bystander's is not.
    (tree / "repro" / "util" / "array.py").write_text(
        "numpy = None\nBACKEND_GENERATION = 2\n", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 1 and stats.cached == 2
    assert not stats.project_cached
    assert any(f.code == "VEC001" and f.path.endswith("prop.py")
               for f in findings)

    after = entries_by_file(cache)
    changed = {name for name in before if before[name] != after[name]}
    assert changed == {"array.py", "prop.py"}
    assert before["idle.py"] == after["idle.py"]


def test_caller_edit_repairs_the_callees_stale_vec_section(tmp_path):
    # The parity domain flows caller-ward: a VEC001 finding lands at the
    # callee, but exists only because of a *caller* elsewhere.  Editing
    # that caller leaves the callee's import-derived project key intact,
    # so the store pass must repair the callee's section by content —
    # otherwise the next fully-warm run resurrects the dead finding.
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "entry.py").write_text(
        "import loss\n\n\ndef broadcast(frame, candidates):\n"
        "    return loss.attenuate(candidates)\n",
        encoding="utf-8",
    )
    (tree / "loss.py").write_text(
        "import numpy as np\n\n\ndef attenuate(gains):\n"
        "    return np.power(10.0, gains)\n",
        encoding="utf-8",
    )
    cache = AnalysisCache(tmp_path / "cache")
    cold, _ = analyze_paths_incremental([tree], cache=cache)
    assert [(f.code, f.line) for f in cold
            if f.path.endswith("loss.py")] == [("VEC002", 1), ("VEC001", 5)]

    # Rename the root: broadcast() stops being a delivery path, so the
    # callee's VEC001 dies even though loss.py itself never changed.
    (tree / "entry.py").write_text(
        "import loss\n\n\ndef prepare(frame, candidates):\n"
        "    return loss.attenuate(candidates)\n",
        encoding="utf-8",
    )
    edited, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 1 and stats.cached == 1
    assert not any(f.code == "VEC001" for f in edited)

    warm, warm_stats = analyze_paths_incremental([tree], cache=cache)
    assert warm_stats.project_cached
    assert warm == edited  # no resurrection from the stale section


def test_dependency_cache_output_is_byte_identical(tmp_path):
    tree = write_linked_tree(tmp_path)

    def render(findings):
        return "\n".join(f.render() for f in findings)

    serial_cache = AnalysisCache(tmp_path / "serial")
    parallel_cache = AnalysisCache(tmp_path / "parallel")
    serial_cold, _ = analyze_paths_incremental([tree], cache=serial_cache)
    parallel_cold, _ = analyze_paths_incremental(
        [tree], jobs=4, cache=parallel_cache)
    serial_warm, _ = analyze_paths_incremental([tree], cache=serial_cache)
    parallel_warm, _ = analyze_paths_incremental(
        [tree], jobs=4, cache=parallel_cache)
    texts = {render(f) for f in (
        serial_cold, parallel_cold, serial_warm, parallel_warm)}
    assert len(texts) == 1
    assert "DET002" in texts.pop()


def test_stats_render_mentions_the_project_stage(tmp_path):
    tree = write_linked_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    _, cold = analyze_paths_incremental([tree], cache=cache)
    _, warm = analyze_paths_incremental([tree], cache=cache)
    assert "project analyzed" in cold.render()
    assert "project hit" in warm.render()

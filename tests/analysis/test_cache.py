"""The incremental cache: hits, busts, corruption, and parallel identity."""

from repro.analysis import AnalysisCache, analyze_paths
from repro.analysis.cache import CACHE_SCHEMA, analyze_paths_incremental


BAD_SOURCE = (
    "import random\n"
    "\n"
    "\n"
    "def pick(options):\n"
    "    return random.choice(options)\n"
)


def write_tree(root):
    tree = root / "pkg"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    (tree / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    return tree


def test_cold_then_warm_runs_are_identical(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold, cold_stats = analyze_paths_incremental([tree], cache=cache)
    warm, warm_stats = analyze_paths_incremental([tree], cache=cache)
    assert cold == warm == analyze_paths([tree])
    assert cold_stats.analyzed == 2 and cold_stats.cached == 0
    assert warm_stats.analyzed == 0 and warm_stats.cached == 2
    assert [f.code for f in cold] == ["DET001", "DET001"]


def test_source_change_busts_only_that_file(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    (tree / "clean.py").write_text("VALUE = 2\n", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 1 and stats.cached == 1
    assert findings == analyze_paths([tree])


def test_ruleset_version_change_busts_everything(tmp_path, monkeypatch):
    from repro.analysis import rules

    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    monkeypatch.setattr(rules, "RULESET_VERSION",
                        rules.RULESET_VERSION + ":bumped")
    _, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 2 and stats.cached == 0


def test_corrupt_entry_is_a_cache_miss(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    for entry in cache.root.glob("*.json"):
        entry.write_text("{not json", encoding="utf-8")
    findings, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.analyzed == 2 and stats.cached == 0
    assert findings == analyze_paths([tree])
    # ... and the re-store repaired the entries.
    _, stats = analyze_paths_incremental([tree], cache=cache)
    assert stats.cached == 2


def test_parallel_and_serial_findings_are_identical(tmp_path):
    tree = write_tree(tmp_path)
    for extra in range(4):
        (tree / f"extra_{extra}.py").write_text(
            f"import random  # {extra}\n", encoding="utf-8")
    serial, _ = analyze_paths_incremental([tree], jobs=1)
    parallel, stats = analyze_paths_incremental([tree], jobs=3)
    assert parallel == serial == analyze_paths([tree])
    assert stats.jobs == 3


def test_entries_are_self_describing(tmp_path):
    import json

    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze_paths_incremental([tree], cache=cache)
    entries = sorted(cache.root.glob("*.json"))
    assert len(entries) == 2
    for entry_path in entries:
        entry = json.loads(entry_path.read_text(encoding="utf-8"))
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["path"].endswith(".py")
        assert "digest" in entry and "findings" in entry


def test_stats_render_mentions_hits_and_jobs(tmp_path):
    tree = write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    _, stats = analyze_paths_incremental([tree], jobs=2, cache=cache)
    text = stats.render()
    assert "2 file(s)" in text
    assert "jobs=2" in text

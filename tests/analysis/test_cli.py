"""The `python -m repro.analysis` command line: exit codes and baseline IO."""

import json

import pytest

from repro.analysis.cli import (
    EXIT_BAD_BASELINE,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_STALE,
    main,
)

BAD_SOURCE = "def seed_for(name):\n    return hash(name)\n"
CLEAN_SOURCE = "def seed_for(name):\n    return len(name)\n"


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    # The default cache dir is CWD-relative; keep test runs from leaving
    # .repro-analysis-cache/ droppings in the repo checkout.
    monkeypatch.chdir(tmp_path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return path


def test_findings_exit_nonzero_with_code_and_location(bad_file, tmp_path, capsys):
    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt")])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "DET003" in out
    assert "bad.py:2" in out


def test_write_baseline_then_clean(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    assert main([str(bad_file), "--baseline", str(baseline),
                 "--write-baseline"]) == EXIT_CLEAN
    assert "TODO: justify" in baseline.read_text(encoding="utf-8")
    capsys.readouterr()
    assert main([str(bad_file), "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "1 waived" in capsys.readouterr().out


def test_stale_waiver_fails_unless_allowed(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN_SOURCE, encoding="utf-8")
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        f"{clean.resolve()}:2: DET003  # covered code that was since fixed\n",
        encoding="utf-8",
    )
    assert main([str(clean), "--baseline", str(baseline)]) == EXIT_STALE
    assert main([str(clean), "--baseline", str(baseline),
                 "--allow-stale"]) == EXIT_CLEAN


def test_malformed_baseline_reports_distinct_exit(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("x.py:1: DET003\n", encoding="utf-8")  # no justification
    assert main([str(bad_file), "--baseline", str(baseline)]) == EXIT_BAD_BASELINE
    assert "justification" in capsys.readouterr().err


def test_json_format(bad_file, tmp_path, capsys):
    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_FINDINGS
    assert payload["clean"] is False
    assert payload["findings"][0]["code"] == "DET003"
    assert payload["findings"][0]["line"] == 2


def test_sarif_format_is_valid_and_lists_the_catalogue(bad_file, tmp_path,
                                                       capsys):
    from repro.analysis import RULES

    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_FINDINGS
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    assert {rule["id"] for rule in driver["rules"]} == set(RULES)
    result = run["results"][0]
    assert result["ruleId"] == "DET003"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 2
    assert location["artifactLocation"]["uri"].endswith("bad.py")


def test_sarif_format_clean_tree_has_empty_results(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN_SOURCE, encoding="utf-8")
    code = main([str(clean), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["runs"][0]["results"] == []


def test_sarif_format_marks_stale_waivers_as_notes(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    main([str(bad_file), "--baseline", str(baseline), "--write-baseline"])
    bad_file.write_text(CLEAN_SOURCE, encoding="utf-8")
    capsys.readouterr()
    code = main([str(bad_file), "--baseline", str(baseline),
                 "--allow-stale", "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    notes = [r for r in payload["runs"][0]["results"]
             if r["level"] == "note"]
    assert len(notes) == 1


def test_github_format_emits_workflow_annotations(bad_file, tmp_path, capsys):
    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "github"])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "::error file=" in out
    assert "line=2" in out
    assert "title=DET003" in out


def test_github_format_clean_tree_prints_verdict(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN_SOURCE, encoding="utf-8")
    code = main([str(clean), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "github"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "::error" not in out
    assert "clean" in out


def test_cache_warm_second_run_hits_and_is_identical(bad_file, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = [str(bad_file), "--baseline", str(tmp_path / "none.txt"),
            "--cache-dir", str(cache_dir)]
    assert main(argv) == EXIT_FINDINGS
    cold = capsys.readouterr()
    assert main(argv) == EXIT_FINDINGS
    warm = capsys.readouterr()
    assert warm.out == cold.out          # findings byte-identical
    assert "0 hit(s)" in cold.err
    assert "1 hit(s)" in warm.err
    assert cache_dir.is_dir()


def test_no_cache_never_writes_the_cache_dir(bad_file, tmp_path):
    cache_dir = tmp_path / "cache"
    main([str(bad_file), "--baseline", str(tmp_path / "none.txt"),
          "--no-cache", "--cache-dir", str(cache_dir)])
    assert not cache_dir.exists()


def test_jobs_zero_means_cpu_count_and_matches_serial(bad_file, tmp_path, capsys):
    argv = [str(bad_file), "--baseline", str(tmp_path / "none.txt"),
            "--no-cache"]
    main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    main(argv + ["--jobs", "0"])
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("DET001", "DET004", "DET007"):
        assert code in out


def test_missing_path_errors(tmp_path):
    with pytest.raises(SystemExit):
        main([str(tmp_path / "missing")])

"""The `python -m repro.analysis` command line: exit codes and baseline IO."""

import json

import pytest

from repro.analysis.cli import (
    EXIT_BAD_BASELINE,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_STALE,
    main,
)

BAD_SOURCE = "def seed_for(name):\n    return hash(name)\n"
CLEAN_SOURCE = "def seed_for(name):\n    return len(name)\n"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return path


def test_findings_exit_nonzero_with_code_and_location(bad_file, tmp_path, capsys):
    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt")])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "DET003" in out
    assert "bad.py:2" in out


def test_write_baseline_then_clean(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    assert main([str(bad_file), "--baseline", str(baseline),
                 "--write-baseline"]) == EXIT_CLEAN
    assert "TODO: justify" in baseline.read_text(encoding="utf-8")
    capsys.readouterr()
    assert main([str(bad_file), "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "1 waived" in capsys.readouterr().out


def test_stale_waiver_fails_unless_allowed(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN_SOURCE, encoding="utf-8")
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        f"{clean.resolve()}:2: DET003  # covered code that was since fixed\n",
        encoding="utf-8",
    )
    assert main([str(clean), "--baseline", str(baseline)]) == EXIT_STALE
    assert main([str(clean), "--baseline", str(baseline),
                 "--allow-stale"]) == EXIT_CLEAN


def test_malformed_baseline_reports_distinct_exit(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("x.py:1: DET003\n", encoding="utf-8")  # no justification
    assert main([str(bad_file), "--baseline", str(baseline)]) == EXIT_BAD_BASELINE
    assert "justification" in capsys.readouterr().err


def test_json_format(bad_file, tmp_path, capsys):
    code = main([str(bad_file), "--baseline", str(tmp_path / "none.txt"),
                 "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_FINDINGS
    assert payload["clean"] is False
    assert payload["findings"][0]["code"] == "DET003"
    assert payload["findings"][0]["line"] == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("DET001", "DET004", "DET007"):
        assert code in out


def test_missing_path_errors(tmp_path):
    with pytest.raises(SystemExit):
        main([str(tmp_path / "missing")])

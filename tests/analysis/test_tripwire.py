"""The runtime RNG tripwire: blocking, call-site naming, restore, drift."""

import random

import pytest

from repro.analysis.tripwire import (
    GlobalRngError,
    Tripwire,
    active,
    guard,
    install,
)
from repro.util.rng import SeededRng


def test_install_blocks_module_entry_points_and_names_call_site():
    tripwire = install()
    try:
        with pytest.raises(GlobalRngError) as excinfo:
            random.random()
        message = str(excinfo.value)
        assert "random.random()" in message
        assert "test_tripwire.py" in message  # the offending call site
    finally:
        tripwire.uninstall()
    # Entry points restored after uninstall.
    assert 0.0 <= random.random() < 1.0


def test_blocked_entry_points_cover_seeding_and_shuffling():
    with pytest.raises(GlobalRngError):
        with guard():
            random.seed(7)
    with pytest.raises(GlobalRngError):
        with guard():
            random.shuffle([1, 2, 3])


def test_guard_label_names_the_cell():
    with pytest.raises(GlobalRngError, match="table4:omni"):
        with guard(label="table4:omni"):
            random.randint(0, 3)


def test_guard_clean_block_passes_and_uninstalls():
    with guard(label="clean-cell"):
        value = SeededRng(3).random()  # private streams stay allowed
    assert 0.0 <= value < 1.0
    assert active() is None


def test_guard_uninstalls_after_violation():
    with pytest.raises(GlobalRngError):
        with guard():
            random.random()
    assert active() is None
    assert 0.0 <= random.random() < 1.0


def test_guard_detects_state_drift_through_direct_reference():
    shared = getattr(random, "_inst", None)
    if shared is None:  # pragma: no cover - non-CPython layout
        pytest.skip("random module does not expose its shared instance")
    with pytest.raises(GlobalRngError, match="drifted"):
        with guard(label="drift-cell"):
            shared.random()  # bypasses the patched module functions


def test_nested_install_rejected():
    tripwire = install()
    try:
        with pytest.raises(RuntimeError, match="already installed"):
            install()
    finally:
        tripwire.uninstall()


def test_uninstall_is_idempotent():
    tripwire = Tripwire().install()
    tripwire.uninstall()
    tripwire.uninstall()
    assert active() is None

"""The runner arms the tripwire around every cell (ROADMAP's RNG audit).

A driver that touches process-global RNG state must fail its cell with a
clear error naming the offending call site; clean drivers run unchanged.
"""

import random

import pytest

from repro.analysis.tripwire import GlobalRngError
from repro.runner.engine import execute_jobs
from repro.runner.jobs import Job
from repro.util.rng import SeededRng


def _dirty_driver(seed: int) -> float:
    # Module-level function so the job pickles into worker processes.
    return random.random() + seed


def _clean_driver(seed: int) -> float:
    return SeededRng(seed).random()


def _job(fn, cell: str) -> Job:
    return Job(experiment="unit", cell=cell, fn=fn, args=(3,), seed=3)


def test_dirty_cell_fails_loudly_in_serial_mode():
    with pytest.raises(GlobalRngError) as excinfo:
        execute_jobs([_job(_dirty_driver, "dirty")], serial=True)
    message = str(excinfo.value)
    assert "random.random()" in message
    assert "test_runner_tripwire.py" in message  # the offending call site
    assert "unit:dirty" in message  # the failing cell


def test_dirty_cell_fails_loudly_across_the_pool():
    with pytest.raises(GlobalRngError, match="unit:dirty"):
        execute_jobs([_job(_dirty_driver, "dirty")], workers=2)


def test_clean_cell_passes_with_tripwire_armed():
    outcomes, _, _ = execute_jobs([_job(_clean_driver, "clean")], serial=True)
    assert outcomes[0].result == SeededRng(3).random()


def test_tripwire_escape_hatch():
    outcomes, _, _ = execute_jobs(
        [_job(_dirty_driver, "dirty")], serial=True, tripwire=False
    )
    assert isinstance(outcomes[0].result, float)

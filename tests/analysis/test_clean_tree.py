"""Tier-1 gate: the shipped tree is clean against the checked-in baseline.

Any new determinism finding — or any waiver whose code has since been fixed
(stale) — fails this test, mirroring `python -m repro.analysis src/repro`
in CI.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "DETERMINISM_BASELINE.txt"


def test_shipped_tree_has_no_new_findings_and_no_stale_waivers():
    findings = analyze_paths([REPO_ROOT / "src" / "repro"])
    new, stale = Baseline.load(BASELINE).apply(findings)
    assert not new, "new determinism findings:\n" + "\n".join(
        f.render() for f in new
    )
    assert not stale, "stale waivers (delete from baseline):\n" + "\n".join(
        w.render() for w in stale
    )


def test_checked_in_waivers_carry_real_justifications():
    baseline = Baseline.load(BASELINE)
    assert baseline.waivers, "baseline should document the accepted findings"
    for waiver in baseline.waivers:
        assert waiver.justification
        assert not waiver.justification.startswith("TODO"), waiver.render()

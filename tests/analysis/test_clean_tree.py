"""Tier-1 gate: the shipped tree is clean against the checked-in baseline.

Any new finding — or any waiver whose code has since been fixed (stale) —
fails this test, mirroring `python -m repro.analysis src/repro` in CI.  The
scope-aware v2 pass also holds the baseline to at most two waivers: the
four seed-era waivers (DET004 in disseminate/prophet, DET005 in wifi) fell
to per-scope type tracking, commutative-accumulation detection, and
dedup-set recognition, and the budget stops them creeping back.
"""

from pathlib import Path

from repro.analysis import AnalysisCache, Baseline, analyze_paths
from repro.analysis.cache import analyze_paths_incremental

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "DETERMINISM_BASELINE.txt"
TREE = REPO_ROOT / "src" / "repro"

#: The waiver-shrink workflow's ceiling (ISSUE 4): fixes must outnumber
#: accepted findings from here on.
MAX_WAIVERS = 2


def test_shipped_tree_has_no_new_findings_and_no_stale_waivers():
    findings = analyze_paths([TREE])
    new, stale = Baseline.load(BASELINE).apply(findings)
    assert not new, "new analysis findings:\n" + "\n".join(
        f.render() for f in new
    )
    assert not stale, "stale waivers (delete from baseline):\n" + "\n".join(
        w.render() for w in stale
    )


def test_baseline_stays_small():
    baseline = Baseline.load(BASELINE)
    assert len(baseline.waivers) <= MAX_WAIVERS, (
        f"baseline grew past {MAX_WAIVERS} waiver(s); fix the findings "
        "instead:\n" + "\n".join(w.render() for w in baseline.waivers)
    )


def test_checked_in_waivers_carry_real_justifications():
    baseline = Baseline.load(BASELINE)
    for waiver in baseline.waivers:
        assert waiver.justification
        assert not waiver.justification.startswith("TODO"), waiver.render()


def test_serial_parallel_and_cache_warm_findings_are_identical(tmp_path):
    serial = analyze_paths([TREE])
    cache = AnalysisCache(tmp_path / "cache")
    cold, cold_stats = analyze_paths_incremental([TREE], jobs=1, cache=cache)
    warm, warm_stats = analyze_paths_incremental([TREE], jobs=1, cache=cache)
    parallel, _ = analyze_paths_incremental([TREE], jobs=2, cache=None)
    assert cold == serial
    assert warm == serial
    assert parallel == serial
    assert cold_stats.cached == 0
    assert warm_stats.cached == warm_stats.files == cold_stats.files
    assert warm_stats.analyzed == 0

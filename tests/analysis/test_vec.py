"""The VEC family: numpy bit-parity and RNG draw order on delivery paths.

The ``fixtures/xvec/`` tree is analyzed with the xvec directory as the
root so ``import helpers`` / ``import mathops`` resolve among the
fixture files — that is what drives the interprocedural VEC001 case
where the banned ufunc sits two calls away from the delivery root.
"""

from pathlib import Path

from repro.analysis import analyze_file, analyze_paths, analyze_project
from repro.analysis.callgraph import build_project_graph
from repro.analysis.taint import compute_parity_chains, is_parity_root

FIXTURES = Path(__file__).parent / "fixtures"
XVEC = FIXTURES / "xvec"


def keys(findings):
    return [(f.code, f.path.rsplit("/", 1)[-1], f.line) for f in findings]


def entries(tree):
    return [(str(p), str(tree), p.read_text(encoding="utf-8"))
            for p in sorted(tree.glob("*.py"))]


# -- the whole-program pass over the xvec tree --------------------------------


def test_xvec_project_findings_are_exact():
    findings = analyze_project([XVEC])
    assert keys(findings) == [
        ("VEC001", "acceptance.py", 15),   # np.exp in accepts_mask
        ("VEC004", "acceptance.py", 19),   # bulk draw in _acceptance_mask
        ("VEC004", "bulk_draw.py", 10),    # rng.random(n) bulk draw
        ("VEC004", "bulk_draw.py", 14),    # draw inside set iteration
        ("VEC001", "direct_ban.py", 12),   # np.hypot via per-call shim read
        ("VEC001", "mathops.py", 10),      # np.power two calls from broadcast
        ("VEC001", "rebucket.py", 19),     # np.power below the _rebucket root
        ("VEC005", "reduction.py", 11),    # np.sum feeding a parity root
    ]
    # clean_vec.py (np.sqrt, arithmetic, stable argsort, per-call backend
    # read, ordered scalar draws), rebucket_clean.py (elementwise
    # acceptance reads, maximum/multiply/add epoch positions, grid_cells
    # bucketing), and offline.py (np.power off the delivery path) stay
    # silent — asserted by the exactness above.


def test_vec001_interprocedural_chain_names_every_hop():
    findings = [f for f in analyze_project([XVEC])
                if f.path.endswith("mathops.py")]
    message = findings[0].message
    # Root, both intermediate hops, and the primitive all appear.
    assert "pipeline:broadcast" in message
    assert "helpers:attenuate" in message
    assert "mathops:raw_loss" in message
    assert "np.power()" in message
    assert "chain:" in message


def test_vec004_messages_distinguish_bulk_from_unordered():
    bulk, unordered = [f for f in analyze_project([XVEC])
                       if f.code == "VEC004"
                       and f.path.endswith("bulk_draw.py")]
    assert "bulk RNG draw" in bulk.message
    assert "unordered (set) iteration" in unordered.message


def test_vec001_chain_reaches_below_the_rebucket_root():
    findings = [f for f in analyze_project([XVEC])
                if f.path.endswith("rebucket.py")]
    message = findings[0].message
    # The root and the non-root helper hop both appear in the chain.
    assert "rebucket:_rebucket" in message
    assert "rebucket:_epoch_coords" in message
    assert "np.power()" in message
    assert "chain:" in message


def test_acceptance_draws_no_rng_even_in_bulk():
    findings = [f for f in analyze_project([XVEC])
                if f.path.endswith("acceptance.py") and f.code == "VEC004"]
    assert len(findings) == 1
    assert "bulk RNG draw" in findings[0].message


def test_vec002_and_vec003_fire_per_file():
    assert [(f.code, f.line) for f in analyze_file(XVEC / "mathops.py")] == [
        ("VEC002", 6),
    ]
    assert [(f.code, f.line)
            for f in analyze_file(XVEC / "module_cache.py")] == [
        ("VEC003", 10),
    ]


def test_vec003_read_per_call_idiom_is_clean():
    # The same `np = array.numpy` expression inside a function body is the
    # sanctioned idiom (direct_ban.py only fires for its np.hypot call).
    findings = analyze_file(XVEC / "direct_ban.py")
    assert [f.code for f in findings] == []


def test_clean_fixture_is_silent_under_both_passes():
    assert analyze_file(XVEC / "clean_vec.py") == []
    assert not [f for f in analyze_paths([XVEC])
                if f.path.endswith("clean_vec.py")]


def test_offline_numpy_user_gets_vec002_but_not_vec001():
    codes = {f.code for f in analyze_paths([XVEC])
             if f.path.endswith("offline.py")}
    assert codes == {"VEC002"}


# -- the parity closure -------------------------------------------------------


def test_parity_closure_covers_transitive_callees_only():
    graph = build_project_graph(entries(XVEC))
    chains = compute_parity_chains(graph)
    names = {f.display for f in chains}
    assert "pipeline:broadcast" in names         # root
    assert "helpers:attenuate" in names          # one call away
    assert "mathops:raw_loss" in names           # two calls away
    assert "offline:summarize" not in names      # never reached


def test_batch_pipeline_surfaces_are_parity_roots(tmp_path):
    # The PR 10 acceptance/rebucket surfaces joined PARITY_ROOT_NAMES:
    # defining any of them makes the function (and its callees) part of
    # the parity closure without a call from an older root.
    names = [
        "accepts_mask", "_acceptance_mask", "_delivery_mask",
        "positions_at", "positions_for", "_rebucket", "insert_batch",
    ]
    source = "".join(
        f"def {name}():\n    return None\n\n\n" for name in names
    ) + "def bystander():\n    return None\n"
    path = tmp_path / "surfaces.py"
    path.write_text(source, encoding="utf-8")
    graph = build_project_graph([(str(path), str(tmp_path), source)])
    info = graph.modules["surfaces"]
    for name in names:
        assert is_parity_root(info.functions[name]), name
    assert not is_parity_root(info.functions["bystander"])


def test_parity_roots_include_record_writer_classes(tmp_path):
    source = (
        "class _BatchDelivery:\n"
        "    def __call__(self):\n"
        "        return None\n"
        "\n"
        "\n"
        "def helper():\n"
        "    return None\n"
    )
    path = tmp_path / "m.py"
    path.write_text(source, encoding="utf-8")
    graph = build_project_graph([(str(path), str(tmp_path), source)])
    info = graph.modules["m"]
    assert is_parity_root(info.functions["_BatchDelivery.__call__"])
    assert not is_parity_root(info.functions["helper"])
    assert not is_parity_root(info.module_body)


def test_address_factory_random_is_not_a_draw(tmp_path):
    # MacAddress.random(rng) is a classmethod address generator, not a
    # bulk uniform draw — the receiver heuristic must not flag it.
    source = (
        "def broadcast(world):\n"
        "    return MacAddress.random(world)\n"
    )
    path = tmp_path / "radio.py"
    path.write_text(source, encoding="utf-8")
    findings = analyze_project([path])
    assert [f.code for f in findings] == []


def test_production_tree_is_vec_clean():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    vec = [f for f in analyze_paths([src]) if f.code.startswith("VEC")]
    assert vec == [], "\n".join(f.render() for f in vec)

"""Fixture: mutable default arguments (DET006).  Linted, never imported."""


def record(event, log=[]):
    log.append(event)
    return log


def tally(counts={}):
    return counts

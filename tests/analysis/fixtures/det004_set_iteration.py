"""Fixture: unsorted set iteration (DET004).  Linted, never imported."""

from typing import Set


def emit(events: Set[str]):
    for event in events:
        print(event)


def materialise():
    order = list({"b", "a"})
    doubles = [item * 2 for item in set(order)]
    return order, doubles


def clean(events: Set[str]):
    total = sum(len(event) for event in events)
    if "boot" in events:
        total += 1
    for event in sorted(events):
        print(event)
    return total

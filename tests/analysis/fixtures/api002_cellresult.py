"""Fixture: deprecated CellResult alias (API002).  Linted, never imported."""

from repro.experiments import CellResult
from repro.experiments.controlled import CellResult as OldCell
from repro.runner.artifacts import CellResult as RunnerCell


def label(controlled, cell):
    return controlled.CellResult, OldCell, RunnerCell, CellResult

"""Fixture: host sleep inside sim code (SIM001).  Linted, never imported."""

import time
from time import sleep


def wait_for_beacon(kernel):
    time.sleep(0.5)
    sleep(0.1)
    kernel.call_in(0.5, lambda: None)

"""Fixture: sim-time mixed with wall-clock (SIM003).  Linted, never imported."""

import time


def skew(kernel):
    wall = time.time()
    return kernel.now - wall


def late(kernel, wall_deadline):
    wall_deadline = time.monotonic()
    return kernel.now > wall_deadline

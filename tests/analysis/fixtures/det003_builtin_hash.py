"""Fixture: builtin hash() for derivation (DET003).  Linted, never imported."""


def seed_for(name):
    return hash(name) % 1000

"""Fixture: host-environment reads (DET007).  Linted, never imported."""

import os


def debug_enabled():
    flag = os.environ.get("REPRO_DEBUG")
    fallback = os.getenv("REPRO_MODE")
    return flag or fallback

"""Fixture: module-level mutable state mutated in runner code (FRK001)."""

RESULTS = []
_SEEN = {}


def record(cell):
    RESULTS.append(cell)
    _SEEN[cell.name] = True


def reset(fresh=None):
    RESULTS.clear()
    local = []
    local.append(fresh)
    return local

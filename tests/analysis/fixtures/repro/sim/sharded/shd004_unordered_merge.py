"""Fixture: dict iteration feeding the ordered record merge (SHD004) and the
sorted() idiom the horizon protocol uses everywhere."""


def merge_bad(by_node):
    records = []
    for node_id, frames in by_node.items():
        records.append((node_id, frames))
    return records


def squares_bad(counts):
    return [value * value for value in counts.values()]


def merge_sorted(by_node):
    records = []
    for node_id in sorted(by_node):
        records.append((node_id, by_node[node_id]))
    return records

"""Fixture: shard code reaches a mirror mutation through an out-of-package
helper (SHD001); the syntactic FRK004 cannot see across the module edge."""

from repro.util.mirror_helpers import adopt, force_position


def rebalance(mirror, position):
    force_position(mirror, position)


def reassign(mirror, shard_index):
    adopt(mirror, shard_index)

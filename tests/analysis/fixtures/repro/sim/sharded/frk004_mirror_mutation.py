"""Fixture: mirror WorldNode state mutated outside the boundary API (FRK004)."""


def drift_mirror(node, position, model):
    node.move_to(position)
    node.set_mobility(model)
    node.owner_shard = 2
    node.mobility = model


def read_only(node):
    return node.owner_shard

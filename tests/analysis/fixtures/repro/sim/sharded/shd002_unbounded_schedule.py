"""Fixture: events scheduled past the horizon (SHD002) + the guarded idiom."""


def schedule_unbounded(kernel, fire_at):
    kernel.call_at(fire_at, _noop)


def schedule_delay(kernel, delay):
    kernel.call_in(delay, _noop)


def schedule_guarded(kernel, t0, t1, fire_at):
    if t0 <= fire_at < t1:
        kernel.call_at(fire_at, _noop)


def schedule_clamped(kernel, fire_at, t1):
    kernel.call_at(min(fire_at, t1), _noop)


def _noop():
    return None

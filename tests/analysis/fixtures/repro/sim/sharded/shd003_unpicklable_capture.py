"""Fixture: a transitively unpicklable instance shipped to a shard worker
(SHD003) — the lock hides two attribute hops away; a plain payload is fine."""

from repro.util.lockbox import Carrier, Plain


def launch(context, worker):
    payload = Carrier()
    process = context.Process(target=worker, args=(payload, 3))
    process.start()
    return process


def launch_plain(context, worker):
    payload = Plain(3)
    process = context.Process(target=worker, args=(payload,))
    process.start()
    return process

"""Fixture: mirror mutation hidden outside the sharded package (SHD001 sink).

Per-file FRK004 is scoped to ``repro/sim/sharded/``, so nothing fires
here — only the whole-program pass sees shard code reaching these.
"""


def force_position(node, position):
    node.move_to(position)


def adopt(node, shard_index):
    node.owner_shard = shard_index

"""Fixture: transitively unpicklable classes (SHD003 evidence chain)."""

import threading


class LockBox:
    def __init__(self):
        self._lock = threading.Lock()


class Carrier:
    def __init__(self):
        self.box = LockBox()


class Plain:
    def __init__(self, value):
        self.value = value

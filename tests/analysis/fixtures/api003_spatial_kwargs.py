"""Fixture: legacy spatial-query keyword spellings (API003).  Linted, never imported."""


def probe(world, medium, index, kind, node, origin):
    stale = world.nodes_within(center=node, radius=30.0)
    older = medium._candidates(kind, origin, cutoff=30.0)
    fine = index.query(origin, 30.0, now=0.0)
    finer = index.query_arrays(origin=origin, radius=30.0, now=0.0)
    return stale, older, fine, finer

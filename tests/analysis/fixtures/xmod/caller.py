"""Fixture: sim-style caller — wall taint arrives through two import forms."""

import helpers
from helpers import now_ms as clock


def stamp():
    return helpers.now_ms()


def stamp_alias():
    return clock()


def stamp_deep():
    return helpers.jittered(1.0)

"""Fixture: properly wrapped RNG — a seeded stream, no global state."""

from repro.util.rng import SeededRng


def draw(seed):
    stream = SeededRng(seed)
    return stream.random()

"""Fixture: tainted helper module — reads the host clock (wall taint)."""

import time


def now_ms():
    return time.time() * 1000.0


def jittered(base):
    return base + now_ms()

"""Fixture: caller of the wrapped-RNG helper — nothing may fire here."""

from wrapped_rng import draw


def sample():
    return draw(7)

"""Fixture: global RNG use (DET001).  Linted, never imported."""

import random
from random import choice
import numpy.random
from numpy import random as np_random


def roll():
    return random.random() + len([choice, np_random, numpy])

"""Fixture: banned ufunc two calls from the delivery path (VEC001).

Also fires the per-file VEC002 for the bare numpy import.
"""

import numpy as np


def raw_loss(distance):
    return np.power(10.0, distance / 10.0)

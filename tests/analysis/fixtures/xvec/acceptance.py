"""Fixture: violations on the batch acceptance surfaces (VEC001, VEC004).

``accepts_mask`` runs a banned transcendental over the receiver states;
``_acceptance_mask`` draws a vector of uniforms even though acceptance
must never consume randomness.  Both names are parity roots of the PR 10
batch delivery pipeline.
"""

from repro.util import array


def accepts_mask(radios, frame, now):
    np = array.numpy
    gains = np.asarray([radio.gain for radio in radios])
    return np.exp(gains) > float(now)


def _acceptance_mask(rng, radios, frame):
    return rng.random(len(radios))

"""Fixture: the middle hop — no numpy of its own, just a call through."""

import mathops


def attenuate(candidates):
    return [mathops.raw_loss(c.distance) for c in candidates]

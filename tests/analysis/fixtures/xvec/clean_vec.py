"""Fixture: every admissible idiom at once — must stay completely silent.

Correctly-rounded primitives (+ - * /, np.sqrt), the shim's stable
argsort, the per-call backend read, and ordered scalar draws are exactly
how PR 8's production pipeline is written; none of VEC001..5 may fire.
"""

from repro.util import array


def delivery_probabilities(origin_x, origin_y, xs, ys):
    np = array.numpy
    distances = array.euclidean_distances(origin_x, origin_y, xs, ys)
    if np is not None:
        return np.sqrt(distances * distances) * 0.5
    return [d * 0.5 for d in distances]


def broadcast(rng, candidates):
    order = array.argsort([c.node_id for c in candidates])
    return [rng.random() for _ in order]

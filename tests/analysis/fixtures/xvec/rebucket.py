"""Fixture: banned ufunc one call below the rebucketing root (VEC001).

``_rebucket`` itself only classifies and bulk-inserts; the violation
hides in the ``_epoch_coords`` helper it calls into — not itself a root,
so the finding proves the parity closure reaches *through* the new
rebucket-path roots, not just into them.
"""

from repro.util import array


def _rebucket(index, now):
    xs, ys = _epoch_coords(index.models, now)
    index.insert_batch(index.items, xs, ys)


def _epoch_coords(models, time):
    np = array.numpy
    xs = np.power(np.asarray([m.x for m in models]), 2.0)
    ys = [m.y for m in models]
    return xs, ys

"""Fixture: RNG draw-order violations on delivery paths (VEC004).

``broadcast`` draws a vector of uniforms at once; ``in_range_mask``
draws while iterating a set.  Both break the one-uniform-per-candidate
ascending-attach-order contract.
"""


def broadcast(rng, candidates):
    return rng.random(len(candidates))


def in_range_mask(rng, nodes):
    return [rng.random() for node in set(nodes)]

"""Fixture: banned ufunc directly inside a parity root (VEC001).

The backend is bound per call through the shim — the sanctioned idiom —
so only the ``np.hypot`` call itself is a finding (no VEC002/VEC003).
"""

from repro.util import array


def delivery_probabilities(distances):
    np = array.numpy
    return np.hypot(distances, distances)

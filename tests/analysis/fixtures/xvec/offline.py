"""Fixture: numpy use *off* the delivery path.

``summarize`` is not parity-sensitive, so the banned ``np.power`` does
not fire VEC001 — only the per-file VEC002 for the bare import.  This is
what scopes the parity taint: offline analytics may use any ufunc.
"""

import numpy as np


def summarize(values):
    return np.power(values, 2.0)

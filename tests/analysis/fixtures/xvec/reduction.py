"""Fixture: order-sensitive reduction feeding a parity root (VEC005).

numpy's pairwise summation associates differently from the sequential
pure-Python twin; the bare import also fires VEC002 per file.
"""

import numpy as np


def delivery_probabilities(gains):
    return np.sum(gains) / len(gains)

"""Fixture: shim backend cached at module scope (VEC003).

The module-level ``np = array.numpy`` reads the backend once, at import
time — monkeypatching ``repro.util.array.numpy`` to None never reaches
this module, so the pure-Python fallback becomes unreachable from here.
"""

from repro.util import array

np = array.numpy


def delivery_probabilities(distances):
    return [d * 0.5 for d in distances]

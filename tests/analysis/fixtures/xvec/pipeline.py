"""Fixture: the delivery-path root of a two-hop VEC001 chain.

``broadcast`` is a parity root; it reaches ``mathops.raw_loss`` (and its
banned ``np.power``) through ``helpers.attenuate`` — the ufunc is two
calls away from the delivery path.  Linted, never imported.
"""

import helpers


def broadcast(medium, frame, candidates):
    losses = helpers.attenuate(candidates)
    return [c for loss, c in zip(losses, candidates) if loss < 1.0]

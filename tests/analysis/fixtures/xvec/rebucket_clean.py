"""Fixture: the admissible batch acceptance/rebucket idiom — silent.

Elementwise state reads for the acceptance mask, correctly-rounded
arithmetic (subtract, maximum, multiply, add) for the epoch positions,
and the shim's ``grid_cells`` for bucket coordinates are exactly how the
production pipeline is written; none of VEC001..5 may fire even though
every function here is a parity root.
"""

from repro.util import array


def accepts_mask(radios, frame, now):
    return [radio.enabled and radio.window_until > now for radio in radios]


def positions_at(models, time):
    np = array.numpy
    if np is None:
        return [m.x for m in models], [m.y for m in models]
    starts = np.asarray([m.start_time for m in models])
    elapsed = np.maximum(0.0, time - starts)
    xs = np.asarray([m.x for m in models]) + 2.0 * elapsed
    ys = np.asarray([m.y for m in models]) + 0.5 * elapsed
    return xs.tolist(), ys.tolist()


def insert_batch(index, items, xs, ys):
    cell_xs, cell_ys = array.grid_cells(xs, ys, 4.0)
    for item, cx, cy in zip(items, cell_xs, cell_ys):
        index.place(item, (cx, cy))

"""Fixture: the epoch-rebucket idiom stays lint-clean.  Linted, never imported.

Mirrors ``repro.phy.index.TimeAwareGridIndex._rebucket``: epoch boundaries
are derived by *multiplying* an integer epoch counter by the epoch length
(never by accumulating ``t += dt`` float steps, which SIM002 flags), and
"when is this bucketing valid" is answered from kernel time alone — no
wall-clock reads, no RNG, no scheduled events.
"""

import math


def rebucket_epoch(kernel, epoch_length: float, positions_at):
    """Return the epoch window containing ``kernel.now`` and its buckets."""
    epoch = math.floor(kernel.now / epoch_length)
    # Guard the float division against rounding at exact boundaries.
    if (epoch + 1) * epoch_length < kernel.now:
        epoch += 1
    elif epoch * epoch_length > kernel.now:
        epoch -= 1
    start = epoch * epoch_length
    end = (epoch + 1) * epoch_length
    buckets = [positions_at(start) for _ in range(1)]
    return epoch, start, end, buckets


def advance_epochs(kernel, epoch_length: float, count: int):
    """Walk ``count`` epoch boundaries without accumulating float time."""
    first = math.floor(kernel.now / epoch_length)
    boundaries = []
    for offset in range(count):
        boundaries.append((first + offset + 1) * epoch_length)
    return boundaries

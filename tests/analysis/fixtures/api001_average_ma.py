"""Fixture: deprecated two-float average_ma form (API001).  Never imported."""


def report(meter, start_time, start_charge):
    stale = meter.average_ma(start_time, start_charge)
    keyed = meter.average_ma(since_time=start_time,
                             since_charge_mas=start_charge)
    snapshot = meter.snapshot()
    fresh = meter.average_ma(since=snapshot, floor_ma=1.0)
    return stale, keyed, fresh

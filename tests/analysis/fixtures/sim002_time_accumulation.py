"""Fixture: sim-time float accumulation (SIM002).  Linted, never imported."""


def poll(kernel, deadline_s: float):
    t = kernel.now
    while t < deadline_s:
        t += 0.1
        kernel.run_until(t)


def clean(kernel, deadline_s: float):
    for step in range(int(deadline_s / 0.1)):
        kernel.run_until((step + 1) * 0.1)

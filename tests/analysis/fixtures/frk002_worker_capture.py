"""Fixture: unpicklable callables shipped to workers (FRK002).  Never imported."""

from multiprocessing import Process


def run_job(job):
    return job.run()


def fan_out(pool, jobs):
    def run_one(job):
        return job.run()

    nested = [pool.submit(run_one, job) for job in jobs]
    inline = pool.submit(lambda: 1)
    spawned = Process(target=lambda: None)
    clean = pool.submit(run_job, jobs[0])
    return nested, inline, spawned, clean

"""Fixture: id()-based ordering (DET005).  Linted, never imported."""


def rank(objects):
    return sorted(objects, key=lambda obj: id(obj))

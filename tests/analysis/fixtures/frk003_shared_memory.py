"""Fixture: raw shared-memory segment (FRK003).  Linted, never imported."""

from multiprocessing import shared_memory


def stash(payload: bytes) -> str:
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment.name

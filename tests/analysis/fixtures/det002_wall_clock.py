"""Fixture: wall-clock reads (DET002).  Linted, never imported."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    tick = time.monotonic()
    now = datetime.now()
    return started, tick, now

"""The whole-program pass: cross-module taint, SHD rules, absorption.

The ``fixtures/xmod/`` tree is analyzed with the xmod directory itself as
the root, so ``import helpers`` resolves among the fixture files; the SHD
fixtures live under ``fixtures/repro/...`` so path normalization roots
them at the ``repro`` package and the path-scoped rules apply.
"""

from pathlib import Path

from repro.analysis import analyze_paths, analyze_project
from repro.analysis.callgraph import (
    build_project_graph,
    module_meta,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures"
XMOD = FIXTURES / "xmod"


def keys(findings):
    return [(f.code, f.path.rsplit("/", 1)[-1], f.line) for f in findings]


# -- cross-module taint -------------------------------------------------------


def test_taint_fires_at_the_caller_site_with_the_chain():
    findings = analyze_project([XMOD])
    assert keys(findings) == [
        ("DET002", "caller.py", 8),    # helpers.now_ms() via plain import
        ("DET002", "caller.py", 12),   # clock() via from-import alias
        ("DET002", "caller.py", 16),   # helpers.jittered() — two hops deep
    ]
    direct, alias, deep = findings
    # The chain names the callee, the primitive, and both files.
    assert "helpers:now_ms" in direct.message
    assert "time.time()" in direct.message
    assert "helpers.py:7" in direct.message
    assert "chain:" in direct.message
    # The alias call site still resolves to the same helper.
    assert "helpers:now_ms" in alias.message
    # The two-hop chain lists the intermediate function.
    assert "helpers:jittered" in deep.message
    assert "helpers:now_ms" in deep.message


def test_clean_wrapped_rng_helper_does_not_fire():
    findings = analyze_paths([XMOD])
    files = {f.path.rsplit("/", 1)[-1] for f in findings}
    assert "wrapped_rng.py" not in files
    assert "clean_caller.py" not in files
    # The tainted helper itself still carries its per-file DET002.
    assert ("DET002", "helpers.py", 7) in keys(findings)


def test_combined_analyze_paths_merges_both_passes():
    combined = analyze_paths([XMOD])
    project_only = analyze_project([XMOD])
    assert set(keys(project_only)) <= set(keys(combined))
    assert len(combined) == len(project_only) + 1  # + per-file DET002


def test_absorption_at_the_exemption_boundary(tmp_path):
    # The same helper taints its caller from an ordinary path but is
    # absorbed when it lives in the file that owns the invariant
    # (DET001 exempts repro/util/rng.py): exempt modules own their hazard.
    helper = "import random\n\n\ndef draw():\n    return random.random()\n"

    owned = tmp_path / "owned" / "repro"
    (owned / "util").mkdir(parents=True)
    (owned / "apps").mkdir()
    (owned / "util" / "rng.py").write_text(helper, encoding="utf-8")
    (owned / "apps" / "game.py").write_text(
        "from repro.util import rng\n\n\ndef roll():\n"
        "    return rng.draw()\n",
        encoding="utf-8",
    )
    assert analyze_project([owned.parent]) == []

    leaked = tmp_path / "leaked" / "repro"
    (leaked / "util").mkdir(parents=True)
    (leaked / "apps").mkdir()
    (leaked / "util" / "dice.py").write_text(helper, encoding="utf-8")
    (leaked / "apps" / "game.py").write_text(
        "from repro.util import dice\n\n\ndef roll():\n"
        "    return dice.draw()\n",
        encoding="utf-8",
    )
    findings = analyze_project([leaked.parent])
    assert [(f.code, f.path, f.line) for f in findings] == [
        ("DET001", "repro/apps/game.py", 5),
    ]
    assert "repro.util.dice:draw" in findings[0].message


# -- the SHD family -----------------------------------------------------------


def test_shd_fixture_tree_findings_are_exact():
    findings = analyze_project([FIXTURES])
    # Sorted comparison: the SHD fixtures normalize under the repro
    # package root while the xvec tree stays cwd-relative, so their
    # relative order depends on where pytest is invoked from.
    assert sorted(keys(findings)) == sorted([
        ("SHD001", "shd001_cross_module_path.py", 8),    # force_position
        ("SHD001", "shd001_cross_module_path.py", 12),   # adopt
        ("SHD002", "shd002_unbounded_schedule.py", 5),   # call_at unguarded
        ("SHD002", "shd002_unbounded_schedule.py", 9),   # call_in unguarded
        ("SHD003", "shd003_unpicklable_capture.py", 9),  # Carrier captured
        ("SHD004", "shd004_unordered_merge.py", 7),      # .items() loop
        ("SHD004", "shd004_unordered_merge.py", 13),     # .values() comp
        ("VEC001", "acceptance.py", 15),                 # np.exp in mask
        ("VEC004", "acceptance.py", 19),                 # bulk acceptance draw
        ("VEC004", "bulk_draw.py", 10),                  # rng.random(n)
        ("VEC004", "bulk_draw.py", 14),                  # draw in set loop
        ("VEC001", "rebucket.py", 19),                   # np.power in rebucket
        ("VEC001", "direct_ban.py", 12),                 # np.hypot
        ("VEC005", "reduction.py", 11),                  # np.sum
    ])
    # The guarded schedule (line 13-14), the min() clamp (line 18), the
    # Plain payload, and the sorted() merge idiom all stay silent —
    # asserted by the exactness of the list above.


def test_shd001_chain_names_the_out_of_package_sink():
    findings = [f for f in analyze_project([FIXTURES])
                if f.code == "SHD001"]
    assert "repro/util/mirror_helpers.py" in findings[0].message
    assert ".move_to()" in findings[0].message


def test_shd001_stays_quiet_for_in_package_sinks(tmp_path):
    # A sharded module calling another sharded module's mutator is FRK004's
    # per-file territory (it fires at the mutation site); SHD001 only adds
    # the cross-module finding when the sink hides outside the package.
    root = tmp_path / "tree" / "repro" / "sim" / "sharded"
    root.mkdir(parents=True)
    (root / "mutator.py").write_text(
        "def shove(node, position):\n    node.move_to(position)\n",
        encoding="utf-8",
    )
    (root / "caller.py").write_text(
        "from repro.sim.sharded.mutator import shove\n\n\n"
        "def rebalance(node, position):\n    shove(node, position)\n",
        encoding="utf-8",
    )
    findings = analyze_project([tmp_path / "tree"])
    assert [f.code for f in findings] == []


def test_shd003_chain_walks_the_attribute_graph():
    findings = [f for f in analyze_project([FIXTURES])
                if f.code == "SHD003"]
    message = findings[0].message
    assert "Carrier" in message
    assert "LockBox" in message
    assert "threading.Lock()" in message


# -- graph plumbing -----------------------------------------------------------


def test_module_names_root_at_the_repro_package(tmp_path):
    assert module_name_for(
        "src/repro/sim/sharded/shard.py", "src/repro"
    ) == "repro.sim.sharded.shard"
    assert module_name_for(
        "src/repro/util/__init__.py", "src"
    ) == "repro.util"
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "helpers.py").write_text("", encoding="utf-8")
    assert module_name_for(tree / "helpers.py", tree) == "helpers"


def test_module_meta_reports_import_candidates(tmp_path):
    module, deps = module_meta(
        "import os.path\nfrom a.b import c\n\n\ndef f():\n"
        "    from x import y\n",
        tmp_path / "m.py", tmp_path,
    )
    assert module == "m"
    assert "os" in deps and "os.path" in deps
    assert "a.b" in deps and "a.b.c" in deps
    assert "x" in deps  # function-local imports still count as deps


def test_resolution_follows_re_export_chains(tmp_path):
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "impl.py").write_text(
        "def work():\n    return 1\n", encoding="utf-8")
    (tree / "api.py").write_text(
        "from impl import work\n", encoding="utf-8")
    (tree / "app.py").write_text(
        "from api import work\n\n\ndef go():\n    return work()\n",
        encoding="utf-8",
    )
    entries = [(str(p), str(tree), p.read_text(encoding="utf-8"))
               for p in sorted(tree.glob("*.py"))]
    graph = build_project_graph(entries)
    app = graph.modules["app"]
    site = app.functions["go"].calls[0]
    assert site.callee is graph.modules["impl"].functions["work"]

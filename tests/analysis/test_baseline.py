"""The waiver mechanism: suppression, expiry, and the justification rule."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineError, analyze_file, normalize_path
from repro.analysis.baseline import Waiver, format_baseline

FIXTURES = Path(__file__).parent / "fixtures"


def _hash_fixture_findings():
    findings = analyze_file(FIXTURES / "det003_builtin_hash.py")
    assert len(findings) == 1
    return findings


def test_waiver_suppresses_matching_finding():
    findings = _hash_fixture_findings()
    finding = findings[0]
    baseline = Baseline.parse(
        f"{finding.path}:{finding.line}: {finding.code}  # legacy derivation\n"
    )
    new, stale = baseline.apply(findings)
    assert new == []
    assert stale == []


def test_waiver_expires_when_finding_disappears():
    findings = _hash_fixture_findings()
    path = findings[0].path
    baseline = Baseline.parse(
        f"{path}:{findings[0].line}: DET003  # legacy derivation\n"
        f"{path}:999: DET003  # covered a line that no longer exists\n"
    )
    new, stale = baseline.apply(findings)
    assert new == []
    assert [w.line for w in stale] == [999]


def test_waiver_mismatched_code_does_not_suppress():
    findings = _hash_fixture_findings()
    finding = findings[0]
    baseline = Baseline.parse(
        f"{finding.path}:{finding.line}: DET005  # wrong rule entirely\n"
    )
    new, stale = baseline.apply(findings)
    assert len(new) == 1 and len(stale) == 1


def test_waiver_requires_justification():
    with pytest.raises(BaselineError, match="justification"):
        Baseline.parse("repro/x.py:10: DET003\n")


def test_waiver_rejects_unknown_rule_code():
    with pytest.raises(BaselineError, match="unknown rule code"):
        Baseline.parse("repro/x.py:10: DET999  # mystery\n")


def test_waiver_rejects_malformed_line():
    with pytest.raises(BaselineError, match="expected"):
        Baseline.parse("not a waiver at all  # but justified\n")


def test_duplicate_waivers_rejected():
    with pytest.raises(BaselineError, match="duplicate"):
        Baseline.parse(
            "repro/x.py:10: DET003  # once\n"
            "repro/x.py:10: DET003  # twice\n"
        )


def test_comments_and_blanks_ignored():
    baseline = Baseline.parse("# header\n\n   \nrepro/x.py:1: DET001  # ok\n")
    assert len(baseline.waivers) == 1


def test_load_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.txt")
    assert baseline.waivers == []


def test_format_baseline_keeps_justifications_and_marks_new():
    findings = analyze_file(FIXTURES / "det006_mutable_default.py")
    assert len(findings) == 2
    first, second = findings
    previous = Baseline(
        [Waiver(first.path, first.line, first.code, "intentional cache")]
    )
    text = format_baseline(findings, previous)
    assert "intentional cache" in text
    assert "TODO: justify" in text
    # The rendered file round-trips and waives everything it lists.
    reparsed = Baseline.parse(text)
    new, stale = reparsed.apply(findings)
    assert new == [] and stale == []
    assert second.key in {w.key for w in reparsed.waivers}


def test_normalize_path_roots_at_repro_package():
    assert normalize_path("/somewhere/src/repro/core/manager.py") == (
        "repro/core/manager.py"
    )
    assert normalize_path("src/repro/radio/wifi.py") == "repro/radio/wifi.py"

"""Symbol-table pass: Python's real lookup semantics, asserted directly.

Each test parses a small module, builds the scope tree, and asserts where
names bind — shadowing, nested functions, class-body invisibility,
comprehension scopes, and the ``global``/``nonlocal`` redirects the rule
passes rely on.
"""

import ast

from repro.analysis import analyze_source, build_scopes
from repro.analysis.scopes import Scope


def scopes_of(source):
    tree = ast.parse(source)
    builder = build_scopes(tree)
    return builder, builder.module_scope


def child(scope, name):
    for candidate in scope.children:
        if candidate.name == name:
            return candidate
    raise AssertionError(f"no child scope {name!r} in {scope!r}")


def test_module_scope_records_top_level_bindings():
    _, module = scopes_of(
        "import time\n"
        "from os.path import join as j\n"
        "LIMIT = 10\n"
        "def run():\n"
        "    pass\n"
        "class Box:\n"
        "    pass\n"
    )
    assert set(module.symbols) == {"time", "j", "LIMIT", "run", "Box"}
    assert module.symbols["time"].import_origin == "time"
    assert module.symbols["j"].import_origin == "os.path.join"
    assert [b.kind for b in module.symbols["run"].bindings] == ["function"]
    assert [b.kind for b in module.symbols["Box"].bindings] == ["class"]


def test_shadowed_name_resolves_locally():
    _, module = scopes_of(
        "items = set()\n"
        "def consume(items):\n"
        "    return items\n"
    )
    function = child(module, "consume")
    scope, symbol = function.resolve("items")
    assert scope is function
    assert [b.kind for b in symbol.bindings] == ["param"]
    # The module's set binding is a different symbol entirely.
    module_symbol = module.symbols["items"]
    assert module_symbol is not symbol


def test_nested_function_reads_enclosing_locals():
    _, module = scopes_of(
        "def outer():\n"
        "    counter = 0\n"
        "    def inner():\n"
        "        return counter\n"
        "    return inner\n"
    )
    outer = child(module, "outer")
    inner = child(outer, "inner")
    scope, _ = inner.resolve("counter")
    assert scope is outer


def test_class_body_is_invisible_to_methods():
    # Python skips class bodies during name lookup from nested functions:
    # `limit` inside the method resolves to the module, not the class body.
    _, module = scopes_of(
        "limit = 1\n"
        "class Box:\n"
        "    limit = 2\n"
        "    def read(self):\n"
        "        return limit\n"
    )
    box = child(module, "Box")
    read = child(box, "read")
    scope, symbol = read.resolve("limit")
    assert scope is module
    # ... but code *in* the class body sees the class binding first.
    scope, _ = box.resolve("limit")
    assert scope is box
    assert symbol.bindings[0].lineno == 1


def test_comprehension_gets_its_own_scope():
    builder, module = scopes_of(
        "def render(rows):\n"
        "    return [row.strip() for row in rows]\n"
    )
    render = child(module, "render")
    comp = child(render, "<listcomp>")
    assert comp.kind == "comprehension"
    # `row` binds in the comprehension, not in render.
    assert "row" in comp.symbols
    assert "row" not in render.symbols
    # `rows` read from the comprehension resolves to the parameter.
    scope, symbol = comp.resolve("rows")
    assert scope is render
    assert symbol.bindings[0].kind == "param"


def test_walrus_binds_in_the_enclosing_function_not_the_comprehension():
    _, module = scopes_of(
        "def scan(rows):\n"
        "    hits = [y for row in rows if (y := row.strip())]\n"
        "    return y\n"
    )
    scan = child(module, "scan")
    assert "y" in scan.symbols
    assert scan.symbols["y"].bindings[0].kind == "walrus"
    comp = child(scan, "<listcomp>")
    assert "y" not in comp.symbols


def test_global_redirects_resolution_to_module():
    _, module = scopes_of(
        "total = 0\n"
        "def bump():\n"
        "    global total\n"
        "    total = 1\n"
    )
    bump = child(module, "bump")
    scope, symbol = bump.resolve("total")
    assert scope is module
    assert symbol is module.symbols["total"]


def test_nonlocal_skips_to_the_enclosing_function():
    _, module = scopes_of(
        "count = -1\n"
        "def outer():\n"
        "    count = 0\n"
        "    def inner():\n"
        "        nonlocal count\n"
        "        count = 1\n"
        "    return inner\n"
    )
    outer = child(module, "outer")
    inner = child(outer, "inner")
    scope, _ = inner.resolve("count")
    assert scope is outer  # not inner (nonlocal), not module


def test_lambda_parameters_bind_in_the_lambda_scope():
    builder, module = scopes_of("key = lambda mesh: mesh.name\n")
    lam = child(module, "<lambda>")
    assert lam.kind == "lambda"
    assert "mesh" in lam.symbols
    assert "mesh" not in module.symbols


def test_qualname_walks_the_scope_chain():
    _, module = scopes_of(
        "class Box:\n"
        "    def read(self):\n"
        "        def helper():\n"
        "            pass\n"
    )
    helper = child(child(child(module, "Box"), "read"), "helper")
    assert helper.qualname() == "Box.read.helper"
    assert module.qualname() == "<module>"


def test_default_values_evaluate_in_the_enclosing_scope():
    # `fallback` in the default expression must resolve at module level;
    # the parameter of the same name is a different symbol.
    builder, module = scopes_of(
        "fallback = [1]\n"
        "def pick(fallback=fallback):\n"
        "    return fallback\n"
    )
    pick = child(module, "pick")
    assert [b.kind for b in pick.symbols["fallback"].bindings] == ["param"]


def test_tuple_unpacking_binds_every_element():
    _, module = scopes_of("a, (b, *c) = value\n")
    for name in ("a", "b", "c"):
        assert name in module.symbols, name
        # Unpacked elements record no RHS (the tuple split is not tracked).
        assert module.symbols[name].bindings[0].value is None


def test_scope_repr_and_module_accessor():
    _, module = scopes_of("def run():\n    x = 1\n")
    run = child(module, "run")
    assert run.module() is module
    assert "run" in repr(run)
    assert isinstance(run, Scope)


# -- the regression the ROADMAP asked for -------------------------------------


def test_det004_does_not_cross_scopes_on_shared_names():
    # Seed-era behaviour: `bundle_ids` anywhere became set-typed because
    # decode() binds a set under that name.  Scope-aware v2 keeps the
    # List[int] parameter a list, so iterating it is clean, while iterating
    # the actual set still fires.
    source = (
        "from typing import List, Set\n"
        "def encode(bundle_ids: List[int]):\n"
        "    return [i for i in bundle_ids]\n"
        "def decode() -> Set[int]:\n"
        "    bundle_ids = {1, 2}\n"
        "    return [i for i in bundle_ids]\n"
    )
    findings = analyze_source(source, "example.py")
    assert [(f.code, f.line) for f in findings] == [("DET004", 6)]

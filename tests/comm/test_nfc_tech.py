"""NFC tap adapter."""

import pytest

from repro.comm.nfc_tech import NfcTapTech
from repro.core.address import OmniAddress
from repro.core.codes import StatusCode
from repro.core.messages import Operation, SendRequest
from repro.core.packed import OmniPacked
from repro.core.tech import TechQueues, TechType
from repro.sim.queues import SimQueue

SENDER = OmniAddress(0xA1)


@pytest.fixture
def touching(kernel, make_device):
    device_a = make_device("a", x=0.0, radios=("nfc",))
    device_b = make_device("b", x=0.05, radios=("nfc",))
    adapter_a = NfcTapTech(kernel, device_a.radio("nfc"))
    adapter_b = NfcTapTech(kernel, device_b.radio("nfc"))
    queues_a = TechQueues(SimQueue(), SimQueue(), SimQueue())
    queues_b = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter_a.enable(queues_a)
    adapter_b.enable(queues_b)
    adapter_b.start_listening()
    return adapter_a, queues_a, adapter_b, queues_b


def _add_context(payload=b"ctx"):
    return SendRequest(
        operation=Operation.ADD_CONTEXT,
        request_id="r1",
        packed=OmniPacked.context(SENDER, payload),
        params={"interval_s": 0.5},
        context_id="ctx-1",
    )


def test_context_delivered_at_contact(kernel, touching):
    adapter_a, queues_a, adapter_b, queues_b = touching
    queues_a.send_queue.put(_add_context())
    kernel.run_until(2.0)
    assert queues_a.response_queue.get_nowait().code is StatusCode.ADD_CONTEXT_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received
    assert all(item.fast_peer_capable for item in received)


def test_no_transmission_when_alone(kernel, make_device):
    device = make_device("lonely", radios=("nfc",))
    adapter = NfcTapTech(kernel, device.radio("nfc"))
    queues = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter.enable(queues)
    queues.send_queue.put(_add_context())
    kernel.run_until(5.0)
    # Tap-triggered: nobody in contact range → zero exchanges, zero energy.
    assert device.radio("nfc").exchanges_sent == 0


def test_send_data_at_contact(kernel, touching):
    adapter_a, queues_a, adapter_b, queues_b = touching
    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, b"tap-data"),
        destination=adapter_b.radio.address,
        destination_omni=OmniAddress(0xB2),
    )
    queues_a.send_queue.put(request)
    kernel.run_until(1.0)
    assert queues_a.response_queue.get_nowait().code is StatusCode.SEND_DATA_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received[0].packed.payload == b"tap-data"


def test_send_data_out_of_contact_fails(kernel, make_device):
    device_a = make_device("a", x=0.0, radios=("nfc",))
    device_b = make_device("b", x=5.0, radios=("nfc",))
    adapter_a = NfcTapTech(kernel, device_a.radio("nfc"))
    adapter_b = NfcTapTech(kernel, device_b.radio("nfc"))
    queues_a = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter_a.enable(queues_a)
    adapter_b.enable(TechQueues(SimQueue(), SimQueue(), SimQueue()))
    adapter_b.start_listening()
    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, b"x"),
        destination=adapter_b.radio.address,
        destination_omni=OmniAddress(0xB2),
    )
    queues_a.send_queue.put(request)
    kernel.run_until(1.0)
    assert queues_a.response_queue.get_nowait().code is StatusCode.SEND_DATA_FAILURE


def test_oversize_payload_fails(kernel, touching):
    adapter_a, queues_a, *_ = touching
    queues_a.send_queue.put(_add_context(payload=bytes(300)))
    kernel.run_until(1.0)
    assert queues_a.response_queue.get_nowait().code is StatusCode.ADD_CONTEXT_FAILURE


def test_estimate(kernel, touching):
    adapter_a, *_ = touching
    assert adapter_a.estimate_data_seconds(100, False) == pytest.approx(0.1)
    assert adapter_a.estimate_data_seconds(10_000, False) is None

"""WiFi multicast adapter: context over the overlay, slow data, monitoring."""

import pytest

from repro.comm.wifi_multicast_tech import WifiMulticastTech
from repro.core.address import OmniAddress
from repro.core.codes import StatusCode
from repro.core.messages import Operation, SendRequest
from repro.core.packed import ContentKind, OmniPacked
from repro.core.tech import TechQueues, TechType
from repro.net.payload import VirtualPayload
from repro.sim.queues import SimQueue

SENDER = OmniAddress(0xA1)
DEST = OmniAddress(0xB2)


@pytest.fixture
def adapters(kernel, make_device, mesh):
    device_a = make_device("a", x=0)
    device_b = make_device("b", x=10)
    adapter_a = WifiMulticastTech(kernel, device_a.radio("wifi"), mesh)
    adapter_b = WifiMulticastTech(kernel, device_b.radio("wifi"), mesh)
    queues_a = TechQueues(SimQueue(), SimQueue(), SimQueue())
    queues_b = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter_a.enable(queues_a)
    adapter_b.enable(queues_b)
    adapter_b.start_listening()
    return adapter_a, queues_a, adapter_b, queues_b


def _add_context(payload=b"ctx", interval=0.5, context_id="ctx-1"):
    return SendRequest(
        operation=Operation.ADD_CONTEXT,
        request_id="r1",
        packed=OmniPacked.context(SENDER, payload),
        params={"interval_s": interval},
        context_id=context_id,
    )


def test_context_requires_join_then_announces(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(5.0)
    assert adapter_a.radio in mesh
    assert not adapter_a.radio.peer_mode  # overlay attachment only
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.ADD_CONTEXT_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received
    assert all(not item.fast_peer_capable for item in received)


def test_channel_overhead_while_context_active(kernel, adapters, mesh):
    adapter_a, queues_a, *_ = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(3.0)
    assert mesh.channel.overhead_fraction > 0
    remove = _add_context()
    remove.operation = Operation.REMOVE_CONTEXT
    queues_a.send_queue.put(remove)
    kernel.run_until(4.0)
    assert mesh.channel.overhead_fraction == 0.0


def test_update_context_interval(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context(interval=0.5))
    kernel.run_until(4.0)
    queues_b.receive_queue.drain()
    update = _add_context(interval=2.0)
    update.operation = Operation.UPDATE_CONTEXT
    queues_a.send_queue.put(update)
    kernel.run_until(12.0)
    received = queues_b.receive_queue.drain()
    # ~8 seconds at a 2 s interval: about 4 announcements.
    assert 2 <= len(received) <= 6


def test_send_data_requires_association_and_delivers(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, VirtualPayload(13_100)),  # 0.1 s of pool
        destination=adapter_b.radio.address,
        destination_omni=DEST,
    )
    start = kernel.now
    queues_a.send_queue.put(request)
    kernel.run_until(start + 10.0)
    responses = queues_a.response_queue.drain()
    assert responses[0].code is StatusCode.SEND_DATA_SUCCESS
    received = [item for item in queues_b.receive_queue.drain()
                if item.packed.kind is ContentKind.DATA]
    assert len(received) == 1


def test_send_data_to_non_listening_dest_fails(kernel, adapters, mesh, make_device):
    adapter_a, queues_a, *_ = adapters
    silent = make_device("silent", x=5)
    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, b"x"),
        destination=silent.radio("wifi").address,
        destination_omni=DEST,
    )
    queues_a.send_queue.put(request)
    kernel.run_until(10.0)
    responses = queues_a.response_queue.drain()
    assert responses[0].code is StatusCode.SEND_DATA_FAILURE


def test_listen_window_is_membership_free(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    # b announces; a (not joined) opens a monitor window and hears it.
    queues_b.send_queue.put(_add_context(context_id="b-ctx"))
    kernel.run_until(3.0)
    assert adapter_a.radio.mesh is None
    adapter_a.listen_window(1.0)
    kernel.run_until(4.5)
    received = queues_a.receive_queue.drain()
    assert received
    assert adapter_a.radio.mesh is None  # still never joined


def test_estimate_reflects_pool_and_association(kernel, adapters, mesh):
    adapter_a, *_ = adapters
    cold = adapter_a.estimate_data_seconds(131_000, fast_hint=False)
    assert cold > 1.0 + 2.8  # transfer + discovery sequence
    # Attach in peer mode, then the estimate drops to the transfer.
    kernel.run_until_complete(adapter_a.radio.join(mesh, peer_mode=True))
    warm = adapter_a.estimate_data_seconds(131_000, fast_hint=False)
    assert warm == pytest.approx(1.0 + 0.04, abs=0.01)


def test_disable_cancels_contexts_and_overhead(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(3.0)
    adapter_a.disable()
    assert mesh.channel.overhead_fraction == 0.0
    # A frame already on air when the sender disabled still lands (airtime +
    # propagation); let it, then assert nothing new is ever announced.
    kernel.run_until(3.1)
    queues_b.receive_queue.drain()
    kernel.run_until(6.0)
    assert queues_b.receive_queue.drain() == []

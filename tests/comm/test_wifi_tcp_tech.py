"""WiFi TCP adapter: fast peering vs scan path."""

import pytest

from repro.comm.wifi_tcp_tech import RESOLUTION_WAIT_S, WifiTcpTech
from repro.core.address import OmniAddress
from repro.core.codes import StatusCode
from repro.core.messages import Operation, SendRequest
from repro.core.packed import ContentKind, OmniPacked
from repro.core.tech import TechQueues, TechType
from repro.net.payload import VirtualPayload
from repro.radio.wifi import (
    FAST_PEERING_S,
    FULL_CONNECT_S,
    SCAN_DURATION_S,
    TCP_HANDSHAKE_S,
)
from repro.sim.queues import SimQueue

SENDER = OmniAddress(0xA1)
DEST = OmniAddress(0xB2)


@pytest.fixture
def adapters(kernel, make_device):
    device_a = make_device("a", x=0)
    device_b = make_device("b", x=10)
    adapter_a = WifiTcpTech(kernel, device_a.radio("wifi"))
    adapter_b = WifiTcpTech(kernel, device_b.radio("wifi"))
    queues_a = TechQueues(SimQueue(), SimQueue(), SimQueue())
    queues_b = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter_a.enable(queues_a)
    adapter_b.enable(queues_b)
    return adapter_a, queues_a, adapter_b, queues_b


def _send(destination, payload=b"req", fast_hint=True):
    return SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, payload),
        destination=destination,
        destination_omni=DEST,
        fast_hint=fast_hint,
    )


def test_fast_hint_send_latency(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_send(adapter_b.radio.address))
    kernel.run_until(1.0)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.SEND_DATA_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received[0].packed.payload == b"req"
    assert not received[0].fast_peer_capable  # TCP arrivals are not beacons
    # The fast path: peering + handshake only.
    expected = FAST_PEERING_S + TCP_HANDSHAKE_S + 12 / 8_100_000
    # One extra scheduler instant for the queue pump.
    items = received[0]


def test_fast_send_completes_in_milliseconds(kernel, adapters):
    adapter_a, queues_a, adapter_b, _ = adapters
    queues_a.send_queue.put(_send(adapter_b.radio.address))
    done = []
    kernel.call_in(0.05, lambda: done.append(bool(queues_a.response_queue.drain())))
    kernel.run_until(0.1)
    assert done == [True]


def test_non_fast_send_pays_scan_connect_resolution(kernel, adapters, mesh):
    adapter_a, queues_a, adapter_b, _ = adapters
    # Destination must be discoverable by scanning: put it in a mesh.
    kernel.run_until_complete(adapter_b.radio.join(mesh, peer_mode=False))
    start = kernel.now
    queues_a.send_queue.put(_send(adapter_b.radio.address, fast_hint=False))
    responses = []

    def poll():
        item = queues_a.response_queue.get_nowait()
        if item is not None:
            responses.append((kernel.now, item))

    kernel.every(0.05, poll)
    kernel.run_until(start + 10.0)
    assert responses
    elapsed = responses[0][0] - start
    floor = SCAN_DURATION_S + FULL_CONNECT_S + RESOLUTION_WAIT_S
    assert floor < elapsed < floor + 0.2
    assert responses[0][1].code is StatusCode.SEND_DATA_SUCCESS


def test_non_fast_send_fails_when_no_network_contains_dest(kernel, adapters):
    adapter_a, queues_a, adapter_b, _ = adapters
    queues_a.send_queue.put(_send(adapter_b.radio.address, fast_hint=False))
    kernel.run_until(5.0)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.SEND_DATA_FAILURE
    assert "no visible network" in response.response_info[0]


def test_send_to_missing_radio_fails(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    from repro.net.addresses import MeshAddress

    queues_a.send_queue.put(_send(MeshAddress(0x9999)))
    kernel.run_until(1.0)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.SEND_DATA_FAILURE


def test_pairwise_sessions_skip_setup_on_repeat(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_send(adapter_b.radio.address))
    kernel.run_until(1.0)
    queues_a.response_queue.drain()
    start = kernel.now
    queues_a.send_queue.put(_send(adapter_b.radio.address))
    kernel.run_until(start + 0.02)
    assert queues_a.response_queue.drain()  # well under a peering time


def test_inbound_transfer_grants_reply_session(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_send(adapter_b.radio.address))
    kernel.run_until(1.0)
    # adapter_b replies without any setup of its own.
    start = kernel.now
    reply = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="r1",
        packed=OmniPacked.data(DEST, b"reply"),
        destination=adapter_a.radio.address,
        destination_omni=SENDER,
        fast_hint=False,  # even without a hint, the session covers it
    )
    queues_b.send_queue.put(reply)
    kernel.run_until(start + 0.05)
    responses = queues_b.response_queue.drain()
    assert responses and responses[0].code is StatusCode.SEND_DATA_SUCCESS


def test_bulk_payload_rides_virtual(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    payload = VirtualPayload(25_000_000, tag="media")
    queues_a.send_queue.put(_send(adapter_b.radio.address, payload=payload))
    kernel.run_until(5.0)
    assert queues_a.response_queue.drain()[0].code is StatusCode.SEND_DATA_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received[0].packed.payload == payload


def test_context_operations_rejected(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    request = SendRequest(
        operation=Operation.ADD_CONTEXT,
        request_id="c1",
        packed=OmniPacked.context(SENDER, b"x"),
        context_id="ctx-1",
    )
    queues_a.send_queue.put(request)
    kernel.run_until(0.5)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.ADD_CONTEXT_FAILURE
    assert "does not carry context" in response.response_info[0]


class TestEstimates:
    def test_fast_hint_estimate(self, kernel, adapters):
        adapter_a, *_ = adapters
        estimate = adapter_a.estimate_data_seconds(39, fast_hint=True)
        assert estimate == pytest.approx(
            FAST_PEERING_S + TCP_HANDSHAKE_S + 39 / 8_100_000
        )

    def test_cold_estimate_includes_discovery(self, kernel, adapters):
        adapter_a, *_ = adapters
        estimate = adapter_a.estimate_data_seconds(39, fast_hint=False)
        assert estimate > SCAN_DURATION_S + FULL_CONNECT_S

    def test_peered_destination_estimate_is_transfer_only(self, kernel, adapters):
        adapter_a, queues_a, adapter_b, _ = adapters
        queues_a.send_queue.put(_send(adapter_b.radio.address))
        kernel.run_until(1.0)
        estimate = adapter_a.estimate_data_seconds(
            39, fast_hint=True, destination=adapter_b.radio.address
        )
        assert estimate == pytest.approx(TCP_HANDSHAKE_S + 39 / 8_100_000)

"""BLE beacon adapter."""

import pytest

from repro.comm.ble_tech import BleBeaconTech
from repro.core.address import OmniAddress
from repro.core.codes import StatusCode
from repro.core.messages import Operation, SendRequest
from repro.core.packed import ContentKind, OmniPacked
from repro.core.tech import TechQueues, TechType
from repro.sim.queues import SimQueue

SENDER = OmniAddress(0xA1)


@pytest.fixture
def adapters(kernel, make_device):
    device_a = make_device("a", x=0, radios=("ble",))
    device_b = make_device("b", x=10, radios=("ble",))
    adapter_a = BleBeaconTech(kernel, device_a.radio("ble"))
    adapter_b = BleBeaconTech(kernel, device_b.radio("ble"))
    queues_a = TechQueues(SimQueue(), SimQueue(), SimQueue())
    queues_b = TechQueues(SimQueue(), SimQueue(), SimQueue())
    adapter_a.enable(queues_a)
    adapter_b.enable(queues_b)
    adapter_b.start_listening()
    return adapter_a, queues_a, adapter_b, queues_b


def _add_context(payload=b"ctx", interval=0.5, context_id="ctx-1"):
    return SendRequest(
        operation=Operation.ADD_CONTEXT,
        request_id="r1",
        packed=OmniPacked.context(SENDER, payload),
        params={"interval_s": interval},
        context_id=context_id,
    )


def test_enable_reports_type_and_mac(kernel, make_device):
    device = make_device("solo", radios=("ble",))
    adapter = BleBeaconTech(kernel, device.radio("ble"))
    tech, address = adapter.enable(TechQueues(SimQueue(), SimQueue(), SimQueue()))
    assert tech is TechType.BLE_BEACON
    assert address == device.radio("ble").address


def test_context_advertised_and_received(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(2.0)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.ADD_CONTEXT_SUCCESS
    received = queues_b.receive_queue.drain()
    assert received
    assert all(item.packed.kind is ContentKind.CONTEXT for item in received)
    assert all(item.fast_peer_capable for item in received)
    assert received[0].low_level_sender == adapter_a.radio.address


def test_oversized_context_fails(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    queues_a.send_queue.put(_add_context(payload=bytes(30)))
    kernel.run_until(0.5)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.ADD_CONTEXT_FAILURE


def test_update_context_changes_advertisement(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context(payload=b"old"))
    kernel.run_until(1.0)
    update = _add_context(payload=b"new")
    update.operation = Operation.UPDATE_CONTEXT
    queues_a.send_queue.put(update)
    kernel.run_until(3.0)
    payloads = [item.packed.payload for item in queues_b.receive_queue.drain()]
    assert b"old" in payloads and payloads[-1] == b"new"


def test_update_unknown_context_behaves_as_add(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    update = _add_context(context_id="ctx-new")
    update.operation = Operation.UPDATE_CONTEXT
    queues_a.send_queue.put(update)
    kernel.run_until(0.5)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.ADD_CONTEXT_SUCCESS


def test_remove_context_stops_advertising(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(1.0)
    remove = _add_context()
    remove.operation = Operation.REMOVE_CONTEXT
    queues_a.send_queue.put(remove)
    kernel.run_until(1.5)
    queues_b.receive_queue.drain()
    kernel.run_until(4.0)
    assert queues_b.receive_queue.drain() == []


def test_remove_unknown_context_fails(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    remove = _add_context(context_id="ghost")
    remove.operation = Operation.REMOVE_CONTEXT
    queues_a.send_queue.put(remove)
    kernel.run_until(0.5)
    assert queues_a.response_queue.get_nowait().code is StatusCode.REMOVE_CONTEXT_FAILURE


def test_send_data_bursts_to_peer(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, b"x" * 30),
        destination=adapter_b.radio.address,
        destination_omni=OmniAddress(0xB2),
    )
    queues_a.send_queue.put(request)
    kernel.run_until(1.0)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.SEND_DATA_SUCCESS
    received = queues_b.receive_queue.drain()
    data_items = [item for item in received
                  if item.packed.kind is ContentKind.DATA]
    assert len(data_items) == 1
    assert data_items[0].packed.payload == b"x" * 30


def test_send_data_to_absent_peer_fails(kernel, adapters):
    adapter_a, queues_a, *_ = adapters
    from repro.net.addresses import MacAddress

    request = SendRequest(
        operation=Operation.SEND_DATA,
        request_id="d1",
        packed=OmniPacked.data(SENDER, b"x"),
        destination=MacAddress(0xDEAD),
        destination_omni=OmniAddress(0xB2),
    )
    queues_a.send_queue.put(request)
    kernel.run_until(0.5)
    response = queues_a.response_queue.get_nowait()
    assert response.code is StatusCode.SEND_DATA_FAILURE
    assert "not in range" in response.response_info[0]


def test_estimate_matches_burst_model(kernel, make_device):
    adapter = BleBeaconTech(kernel, make_device("x", radios=("ble",)).radio("ble"))
    assert adapter.estimate_data_seconds(27, False) == pytest.approx(0.020)
    assert adapter.estimate_data_seconds(39, False) == pytest.approx(0.040)
    assert adapter.estimate_data_seconds(25_000_000, False) is None


def test_listen_window_closes(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    # adapter_a is not listening; open a brief window.
    adapter_a.listen_window(0.3)
    assert adapter_a.radio.scanning
    kernel.run_until(0.5)
    assert not adapter_a.radio.scanning


def test_listen_window_does_not_stop_continuous_listening(kernel, adapters):
    _, _, adapter_b, _ = adapters
    adapter_b.listen_window(0.1)
    kernel.run_until(1.0)
    assert adapter_b.radio.scanning  # continuous listening survives


def test_disable_stops_advertisements(kernel, adapters):
    adapter_a, queues_a, adapter_b, queues_b = adapters
    queues_a.send_queue.put(_add_context())
    kernel.run_until(1.0)
    adapter_a.disable()
    queues_b.receive_queue.drain()
    kernel.run_until(4.0)
    assert queues_b.receive_queue.drain() == []

"""Flow energy model: duty curve and per-device aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.constants import WIFI_RECEIVE_MA, WIFI_SEND_MA
from repro.energy.meter import EnergyMeter
from repro.net.flow_energy import (
    DEFAULT_FLOW_ENERGY,
    FlowEnergyAccountant,
    FlowEnergyParams,
    accountant_for,
    flow_draw_ma,
    multicast_receiver_binder,
    receiver_binder,
    sender_binder,
)


class TestDrawCurve:
    def test_zero_rate_zero_draw(self):
        assert flow_draw_ma(0.0, WIFI_SEND_MA) == 0.0

    def test_wake_floor_for_trickle(self):
        params = DEFAULT_FLOW_ENERGY
        draw = flow_draw_ma(1.0, WIFI_RECEIVE_MA, params)
        assert draw >= WIFI_RECEIVE_MA * params.wake_floor_duty

    def test_saturated_rate_includes_surcharge(self):
        params = DEFAULT_FLOW_ENERGY
        draw = flow_draw_ma(params.reference_rate_bps * 3, WIFI_RECEIVE_MA, params)
        assert draw == pytest.approx(WIFI_RECEIVE_MA + params.saturation_extra_ma)

    def test_below_knee_no_surcharge(self):
        params = FlowEnergyParams()
        rate = params.reference_rate_bps * 0.3
        assert flow_draw_ma(rate, 100.0, params) == pytest.approx(
            100.0 * (0.3 + params.wake_floor_duty)
        )

    @given(st.floats(min_value=0, max_value=1e8, allow_nan=False))
    def test_property_monotonic_in_rate(self, rate):
        lower = flow_draw_ma(rate, WIFI_SEND_MA)
        higher = flow_draw_ma(rate * 1.5 + 1, WIFI_SEND_MA)
        assert higher >= lower - 1e-9


class TestAccountant:
    def test_aggregates_rates_per_direction(self, kernel):
        meter = EnergyMeter(kernel)
        accountant = FlowEnergyAccountant(meter, DEFAULT_FLOW_ENERGY)
        accountant.set_rate("rx", "a", 500_000)
        accountant.set_rate("rx", "b", 500_000)
        assert accountant.total("rx") == 1_000_000
        draws = meter.active_components()
        expected_duty = 1_000_000 / DEFAULT_FLOW_ENERGY.reference_rate_bps + 0.02
        assert draws["wifi.flow-rx"] == pytest.approx(WIFI_RECEIVE_MA * expected_duty)

    def test_wake_floor_not_stacked_across_flows(self, kernel):
        """Ten trickles wake one radio, not ten — the aggregation fix."""
        meter = EnergyMeter(kernel)
        accountant = FlowEnergyAccountant(meter, DEFAULT_FLOW_ENERGY)
        for index in range(10):
            accountant.set_rate("rx", f"flow-{index}", 10.0)
        single = flow_draw_ma(100.0, WIFI_RECEIVE_MA)
        assert meter.active_components()["wifi.flow-rx"] == pytest.approx(single)

    def test_surcharge_computed_on_combined_duty(self, kernel):
        meter = EnergyMeter(kernel)
        params = DEFAULT_FLOW_ENERGY
        accountant = FlowEnergyAccountant(meter, params)
        accountant.set_rate("tx", "a", params.reference_rate_bps)
        accountant.set_rate("rx", "b", params.reference_rate_bps)
        assert meter.active_components()["wifi.flow-cpu"] == pytest.approx(
            params.saturation_extra_ma
        )

    def test_zero_rate_removes_flow(self, kernel):
        meter = EnergyMeter(kernel)
        accountant = FlowEnergyAccountant(meter, DEFAULT_FLOW_ENERGY)
        accountant.set_rate("tx", "a", 1000.0)
        accountant.set_rate("tx", "a", 0.0)
        assert accountant.total("tx") == 0.0
        assert meter.active_components().get("wifi.flow-tx", 0.0) == 0.0

    def test_invalid_direction_rejected(self, kernel):
        accountant = FlowEnergyAccountant(EnergyMeter(kernel), DEFAULT_FLOW_ENERGY)
        with pytest.raises(ValueError):
            accountant.set_rate("sideways", "a", 1.0)

    def test_accountant_for_is_per_meter(self, kernel):
        meter_a = EnergyMeter(kernel, "a")
        meter_b = EnergyMeter(kernel, "b")
        assert accountant_for(meter_a) is accountant_for(meter_a)
        assert accountant_for(meter_a) is not accountant_for(meter_b)


class TestBinders:
    def test_binder_keys_are_unique(self, kernel):
        meter = EnergyMeter(kernel)
        a = sender_binder(meter)
        b = sender_binder(meter)
        assert a.key != b.key

    def test_binder_updates_and_release(self, kernel):
        meter = EnergyMeter(kernel)
        binder = receiver_binder(meter)
        binder(1_000_000)
        assert meter.active_components()["wifi.flow-rx"] > 0
        binder.release()
        assert meter.active_components().get("wifi.flow-rx", 0.0) == 0.0

    def test_multicast_binder_scales_airtime(self, kernel):
        meter_a = EnergyMeter(kernel, "a")
        meter_b = EnergyMeter(kernel, "b")
        unicast = receiver_binder(meter_a)
        multicast = multicast_receiver_binder(meter_b)
        rate = 50_000.0
        unicast(rate)
        multicast(rate)
        assert (
            meter_b.active_components()["wifi.flow-rx"]
            > meter_a.active_components()["wifi.flow-rx"]
        )

"""Mock infrastructure server."""

import pytest

from repro.net.infra import InfrastructureServer


def test_download_duration_matches_rate(kernel, make_device):
    infra = InfrastructureServer(kernel)
    device = make_device("a")
    completion = infra.download(device.meter, 30_000_000, 100_000.0)
    kernel.run_until_complete(completion, timeout=1000)
    assert kernel.now == pytest.approx(300.0)


def test_chunked_download_emits_per_chunk(kernel, make_device):
    infra = InfrastructureServer(kernel)
    device = make_device("a")
    arrivals = []
    plan = infra.download_chunks(
        device.meter, [1000, 1000, 2000], 1000.0,
        on_chunk=lambda index: arrivals.append((index, kernel.now)),
    )
    kernel.run_until_complete(plan.completion, timeout=100)
    assert arrivals == [(0, 1.0), (1, 2.0), (2, 4.0)]


def test_cancel_stops_after_current_chunk(kernel, make_device):
    infra = InfrastructureServer(kernel)
    device = make_device("a")
    arrivals = []
    plan = infra.download_chunks(
        device.meter, [1000] * 10, 1000.0,
        on_chunk=lambda index: arrivals.append(index),
    )
    kernel.call_at(2.5, plan.cancel)
    kernel.run_until_complete(plan.completion, timeout=100)
    assert arrivals == [0, 1, 2]
    assert kernel.now == pytest.approx(3.0)


def test_empty_chunk_list_completes_immediately(kernel, make_device):
    infra = InfrastructureServer(kernel)
    plan = infra.download_chunks(make_device("a").meter, [], 1000.0)
    assert kernel.run_until_complete(plan.completion, timeout=1) == []


def test_download_charges_receive_energy(kernel, make_device):
    infra = InfrastructureServer(kernel)
    device = make_device("a")
    snapshot = device.meter.snapshot()
    completion = infra.download(device.meter, 100_000, 100_000.0)
    kernel.run_until_complete(completion, timeout=10)
    from repro.energy.constants import WIFI_STANDBY_MA

    # Above standby there must be a receive-duty draw for the second.
    assert snapshot.average_ma(WIFI_STANDBY_MA) > 1.0
    # And it stops afterwards.
    after = device.meter.snapshot()
    kernel.run_until(kernel.now + 10)
    assert after.average_ma(WIFI_STANDBY_MA) == pytest.approx(0.0, abs=1e-6)


def test_bytes_served_accumulates(kernel, make_device):
    infra = InfrastructureServer(kernel)
    device = make_device("a")
    kernel.run_until_complete(infra.download(device.meter, 5000, 1000.0), timeout=10)
    kernel.run_until_complete(infra.download(device.meter, 3000, 1000.0), timeout=10)
    assert infra.bytes_served == 8000


def test_invalid_rate_rejected(kernel, make_device):
    infra = InfrastructureServer(kernel)
    with pytest.raises(ValueError):
        infra.download(make_device("a").meter, 100, 0.0)

"""Low-level addresses: encoding, ranges, randomness."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import MacAddress, MeshAddress, NfcAddress
from repro.util.rng import SeededRng


class TestMacAddress:
    def test_wire_width(self):
        assert MacAddress.WIRE_BYTES == 6
        assert len(MacAddress(0).to_bytes()) == 6

    def test_roundtrip(self):
        address = MacAddress(0x112233445566)
        assert MacAddress.from_bytes(address.to_bytes()) == address

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_property_roundtrip(self, value):
        address = MacAddress(value)
        assert MacAddress.from_bytes(address.to_bytes()) == address

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_wrong_byte_count_rejected(self):
        with pytest.raises(ValueError):
            MacAddress.from_bytes(b"\x00" * 5)

    def test_random_is_locally_administered_unicast(self):
        for seed in range(20):
            address = MacAddress.random(SeededRng(seed))
            raw = address.to_bytes()
            assert raw[0] & 0x01 == 0  # unicast
            assert raw[0] & 0x02 == 0x02  # locally administered

    def test_str_format(self):
        assert str(MacAddress(0x0A0B0C0D0E0F)) == "0a:0b:0c:0d:0e:0f"

    def test_ordering(self):
        assert MacAddress(1) < MacAddress(2)


class TestMeshAddress:
    def test_wire_width(self):
        assert MeshAddress.WIRE_BYTES == 8

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_property_roundtrip(self, value):
        address = MeshAddress(value)
        assert MeshAddress.from_bytes(address.to_bytes()) == address

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MeshAddress(1 << 64)

    def test_random_deterministic(self):
        assert MeshAddress.random(SeededRng(1)) == MeshAddress.random(SeededRng(1))


class TestNfcAddress:
    def test_wire_width(self):
        assert NfcAddress.WIRE_BYTES == 4

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_property_roundtrip(self, value):
        address = NfcAddress(value)
        assert NfcAddress.from_bytes(address.to_bytes()) == address


def test_beacon_payload_width_matches_paper():
    # "14 additional bytes ... 8 for the Wifi-Mesh address and 6 for BLE".
    assert MeshAddress.WIRE_BYTES + MacAddress.WIRE_BYTES == 14

"""Mesh networks: membership, channels."""

import pytest

from repro.net.mesh import (
    MULTICAST_CAPACITY_BPS,
    UNICAST_CAPACITY_BPS,
    MeshNetwork,
)
from repro.radio.frame import RadioKind


def test_channel_capacities(kernel):
    mesh = MeshNetwork(kernel, "m")
    assert mesh.channel.capacity_bps == UNICAST_CAPACITY_BPS
    assert mesh.multicast_channel.capacity_bps == MULTICAST_CAPACITY_BPS
    # The 802.11 multicast anomaly: orders of magnitude slower.
    assert MULTICAST_CAPACITY_BPS * 10 < UNICAST_CAPACITY_BPS


def test_membership_via_join(kernel, make_device, mesh):
    device = make_device("a")
    radio = device.radio(RadioKind.WIFI)
    kernel.run_until_complete(radio.join(mesh))
    assert radio in mesh
    assert mesh.members == [radio]
    assert mesh.member_by_address(radio.address) is radio


def test_member_by_address_missing(mesh):
    from repro.net.addresses import MeshAddress

    assert mesh.member_by_address(MeshAddress(42)) is None


def test_members_sorted_by_address(kernel, make_device, mesh):
    devices = [make_device(name, x=i) for i, name in enumerate("abc")]
    for device in devices:
        kernel.run_until_complete(device.radio(RadioKind.WIFI).join(mesh))
    members = mesh.members
    addresses = [member.address for member in members]
    assert addresses == sorted(addresses)


def test_leave_removes_membership(kernel, make_device, mesh):
    device = make_device("a")
    radio = device.radio(RadioKind.WIFI)
    kernel.run_until_complete(radio.join(mesh))
    radio.leave()
    assert radio not in mesh
    assert mesh.members == []


def test_transfer_25mb_takes_about_three_seconds(kernel, make_device, mesh):
    # The Table 4 calibration: 25 MB ≈ 3.09 s on a clean channel.
    from repro.net.payload import VirtualPayload

    a = make_device("a", x=0).radio(RadioKind.WIFI)
    b = make_device("b", x=5).radio(RadioKind.WIFI)
    kernel.run_until_complete(a.join(mesh))
    kernel.run_until_complete(b.join(mesh))
    start = kernel.now
    transfer = a.send_unicast(b.address, VirtualPayload(25_000_000))
    kernel.run_until_complete(transfer.completion)
    assert kernel.now - start == pytest.approx(3.09, abs=0.05)

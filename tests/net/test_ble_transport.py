"""BLE fragmentation transport."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ble_transport import (
    FRAGMENT_CAPACITY,
    FRAGMENT_INTERVAL_S,
    MAX_MESSAGE_BYTES,
    BleBurstSender,
    BleReassembler,
    BleTransportError,
    burst_duration,
    fragment,
    parse_fragment,
)
from repro.net.addresses import MacAddress
from repro.radio.frame import RadioKind


class TestFragmentation:
    def test_small_payload_single_fragment(self):
        frames = fragment(1, b"hello")
        assert len(frames) == 1
        message_id, index, count, piece = parse_fragment(frames[0])
        assert (message_id, index, count, piece) == (1, 0, 1, b"hello")

    def test_empty_payload_still_one_fragment(self):
        frames = fragment(1, b"")
        assert len(frames) == 1

    def test_thirty_bytes_needs_two_fragments(self):
        # The Table 4 interaction payload: 30 B data + 9 B packed header.
        frames = fragment(1, bytes(39))
        assert len(frames) == 2

    def test_fragment_sizes_fit_advertisements(self):
        frames = fragment(1, bytes(500))
        assert all(len(frame) <= 31 for frame in frames)

    def test_oversize_rejected(self):
        with pytest.raises(BleTransportError):
            fragment(1, bytes(MAX_MESSAGE_BYTES + 1))

    def test_bad_message_id_rejected(self):
        with pytest.raises(ValueError):
            fragment(1 << 16, b"x")

    def test_parse_rejects_short_frames(self):
        with pytest.raises(BleTransportError):
            parse_fragment(b"\x00")

    def test_parse_rejects_inconsistent_header(self):
        import struct

        bad = struct.pack("!HBB", 1, 5, 3) + b"x"  # index >= count
        with pytest.raises(BleTransportError):
            parse_fragment(bad)

    @given(st.binary(max_size=2000), st.integers(min_value=0, max_value=65535))
    def test_property_fragment_reassemble_roundtrip(self, payload, message_id):
        received = []
        reassembler = BleReassembler(lambda raw, sender: received.append(raw))
        sender = MacAddress(0x1234)
        for frame in fragment(message_id, payload):
            reassembler.accept(frame, sender)
        assert received == [payload]

    def test_out_of_order_reassembly(self):
        received = []
        reassembler = BleReassembler(lambda raw, sender: received.append(raw))
        frames = fragment(7, bytes(range(80)))
        sender = MacAddress(1)
        for frame in reversed(frames):
            reassembler.accept(frame, sender)
        assert received == [bytes(range(80))]

    def test_interleaved_senders_do_not_mix(self):
        received = []
        reassembler = BleReassembler(lambda raw, sender: received.append((sender, raw)))
        payload_a, payload_b = bytes(40), bytes([1]) * 40
        frames_a = fragment(1, payload_a)
        frames_b = fragment(1, payload_b)  # same message id, other sender
        sender_a, sender_b = MacAddress(1), MacAddress(2)
        reassembler.accept(frames_a[0], sender_a)
        reassembler.accept(frames_b[0], sender_b)
        reassembler.accept(frames_b[1], sender_b)
        reassembler.accept(frames_a[1], sender_a)
        assert (sender_b, payload_b) in received
        assert (sender_a, payload_a) in received

    def test_pending_tracks_partials(self):
        reassembler = BleReassembler(lambda raw, sender: None)
        frames = fragment(1, bytes(100))
        reassembler.accept(frames[0], MacAddress(1))
        assert reassembler.pending == 1


class TestBurstSender:
    def test_burst_paces_fragments(self, kernel, make_device):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        received = []
        reassembler = BleReassembler(
            lambda raw, sender: received.append((kernel.now, raw))
        )
        b.radio(RadioKind.BLE).start_scanning(
            lambda payload, mac, dist: reassembler.accept(payload, mac)
        )
        payload = bytes(39)  # two fragments
        sender = BleBurstSender(a.radio(RadioKind.BLE))
        sender.send(payload)
        kernel.run_until(1.0)
        assert len(received) == 1
        # Delivered after 2 × fragment interval + airtime ≈ 41 ms — the
        # one-way half of the paper's 82 ms BLE interaction.
        assert received[0][0] == pytest.approx(0.041, abs=0.002)

    def test_burst_completion_reports_receivers(self, kernel, make_device):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        b.radio(RadioKind.BLE).start_scanning(lambda *args: None)
        sender = BleBurstSender(a.radio(RadioKind.BLE))
        completion = sender.send(b"tiny")
        result = kernel.run_until_complete(completion, timeout=5)
        assert result == 1

    def test_burst_fails_if_radio_disabled_midway(self, kernel, make_device):
        a = make_device("a", x=0)
        sender = BleBurstSender(a.radio(RadioKind.BLE))
        completion = sender.send(bytes(100))
        kernel.call_in(FRAGMENT_INTERVAL_S * 1.5,
                       a.radio(RadioKind.BLE).disable)
        with pytest.raises(BleTransportError):
            kernel.run_until_complete(completion, timeout=5)

    def test_message_ids_cycle(self, kernel, make_device):
        sender = BleBurstSender(make_device("a").radio(RadioKind.BLE))
        sender._next_message_id = (1 << 16) - 1
        sender.send(b"x")
        assert sender._next_message_id == 0


def test_burst_duration_model():
    assert burst_duration(10) == pytest.approx(FRAGMENT_INTERVAL_S)
    assert burst_duration(FRAGMENT_CAPACITY + 1) == pytest.approx(
        2 * FRAGMENT_INTERVAL_S
    )
    # Round trip of two 39-byte messages ≈ 82 ms (paper's BLE latency),
    # adding per-leg airtime.
    assert 2 * burst_duration(39) == pytest.approx(0.080, abs=0.001)

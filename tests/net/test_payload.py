"""Payload abstractions."""

import pytest

from repro.net.payload import VirtualPayload, describe_payload, payload_size


def test_payload_size_bytes():
    assert payload_size(b"hello") == 5
    assert payload_size(b"") == 0


def test_payload_size_virtual():
    assert payload_size(VirtualPayload(25_000_000, "media")) == 25_000_000


def test_virtual_payload_rejects_negative_size():
    with pytest.raises(ValueError):
        VirtualPayload(-1)


def test_virtual_payload_is_hashable_value():
    a = VirtualPayload(10, "x")
    b = VirtualPayload(10, "x")
    assert a == b
    assert hash(a) == hash(b)


def test_meta_carries_structured_data():
    payload = VirtualPayload(100, "chunk", meta=(("chunk", 3),))
    assert payload.meta[0] == ("chunk", 3)


def test_describe_payload_variants():
    assert "42" in describe_payload(VirtualPayload(42, "tag"))
    assert describe_payload(b"\x01\x02") == "0102"
    assert "B>" in describe_payload(bytes(100))

"""Multicast discovery announcer."""

import pytest

from repro.net.announcer import MulticastAnnouncer
from repro.radio.frame import RadioKind
from repro.radio.wifi import MULTICAST_AIRTIME_S


@pytest.fixture
def announcer_pair(kernel, make_device, mesh):
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    announcer = MulticastAnnouncer(
        a.radio(RadioKind.WIFI), mesh, lambda: b"announce", interval_s=0.5
    )
    return announcer, a, b


def test_start_joins_and_announces(kernel, announcer_pair, mesh):
    announcer, a, b = announcer_pair
    heard = []
    kernel.run_until_complete(b.radio(RadioKind.WIFI).join(mesh, peer_mode=False))
    b.radio(RadioKind.WIFI).on_multicast(lambda payload, src: heard.append(kernel.now))
    announcer.start()
    kernel.run_until(5.0)
    assert a.radio(RadioKind.WIFI) in mesh
    # Joined after ~1 s, then every ~0.5 s.
    assert 6 <= len(heard) <= 10


def test_membership_is_multicast_only(kernel, announcer_pair):
    announcer, a, _ = announcer_pair
    announcer.start()
    kernel.run_until(3.0)
    assert not a.radio(RadioKind.WIFI).peer_mode


def test_payload_factory_called_fresh_each_time(kernel, make_device, mesh):
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    payloads = iter([b"one", b"two", b"three", b"four", b"five", b"six"])
    announcer = MulticastAnnouncer(
        a.radio(RadioKind.WIFI), mesh, lambda: next(payloads), interval_s=0.5
    )
    heard = []
    kernel.run_until_complete(b.radio(RadioKind.WIFI).join(mesh, peer_mode=False))
    b.radio(RadioKind.WIFI).on_multicast(lambda payload, src: heard.append(payload))
    announcer.start()  # joins for ~1 s, then announces every ~0.5 s
    kernel.run_until(3.3)
    assert heard[:2] == [b"one", b"two"]


def test_channel_overhead_registered_while_active(kernel, announcer_pair, mesh):
    announcer, _, _ = announcer_pair
    announcer.start()
    kernel.run_until(2.0)
    assert mesh.channel.overhead_fraction == pytest.approx(
        MULTICAST_AIRTIME_S / 0.5
    )
    announcer.stop()
    assert mesh.channel.overhead_fraction == 0.0


def test_stop_silences_announcements(kernel, announcer_pair, mesh):
    announcer, _, b = announcer_pair
    heard = []
    kernel.run_until_complete(b.radio(RadioKind.WIFI).join(mesh, peer_mode=False))
    b.radio(RadioKind.WIFI).on_multicast(lambda payload, src: heard.append(payload))
    announcer.start()
    kernel.run_until(3.0)
    count = len(heard)
    announcer.stop()
    announcer.stop()  # idempotent
    kernel.run_until(10.0)
    assert len(heard) == count


def test_rescans_when_configured(kernel, make_device, mesh):
    a = make_device("a", x=0)
    radio = a.radio(RadioKind.WIFI)
    announcer = MulticastAnnouncer(radio, mesh, lambda: b"x", interval_s=0.5,
                                   rescan_period_s=5.0)
    announcer.start()
    kernel.run_until(12.0)
    assert radio.scans_performed == 2


def test_no_rescans_by_default(kernel, announcer_pair):
    announcer, a, _ = announcer_pair
    announcer.start()
    kernel.run_until(60.0)
    assert a.radio(RadioKind.WIFI).scans_performed == 0


def test_invalid_interval_rejected(kernel, make_device, mesh):
    with pytest.raises(ValueError):
        MulticastAnnouncer(
            make_device("a").radio(RadioKind.WIFI), mesh, lambda: b"", interval_s=0
        )

"""Fluid channel: processor sharing, overheads, aborts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channel import FlowAborted, FluidChannel
from repro.sim.kernel import Kernel


@pytest.fixture
def channel(kernel):
    return FluidChannel(kernel, capacity_bps=1000.0)


def test_single_flow_full_capacity(kernel, channel):
    flow = channel.start_flow(2000)
    kernel.run_until_complete(flow.completion, timeout=10)
    assert kernel.now == pytest.approx(2.0)


def test_zero_byte_flow_completes_immediately(kernel, channel):
    flow = channel.start_flow(0)
    kernel.run_until_complete(flow.completion, timeout=1)
    assert kernel.now == pytest.approx(0.0)


def test_two_equal_flows_share_equally(kernel, channel):
    a = channel.start_flow(1000)
    b = channel.start_flow(1000)
    kernel.run_until_complete(b.completion, timeout=10)
    assert kernel.now == pytest.approx(2.0)
    assert a.done and b.done


def test_short_flow_finishes_first_then_long_speeds_up(kernel, channel):
    long_flow = channel.start_flow(2000)
    short_flow = channel.start_flow(500)
    kernel.run_until_complete(short_flow.completion, timeout=10)
    # Shared at 500 B/s each: short done at t=1.
    assert kernel.now == pytest.approx(1.0)
    kernel.run_until_complete(long_flow.completion, timeout=10)
    # Long had 1500 left at t=1, then full 1000 B/s: done at 2.5.
    assert kernel.now == pytest.approx(2.5)


def test_late_joiner_slows_existing_flow(kernel, channel):
    first = channel.start_flow(1000)
    kernel.run_until(0.5)  # first has 500 left
    second = channel.start_flow(500)
    kernel.run_until_complete(first.completion, timeout=10)
    # Both at 500 B/s from t=0.5: both finish at t=1.5.
    assert kernel.now == pytest.approx(1.5)
    assert second.done


def test_overhead_reduces_effective_capacity(kernel, channel):
    channel.set_overhead("announcer", 0.5)
    flow = channel.start_flow(1000)
    kernel.run_until_complete(flow.completion, timeout=10)
    assert kernel.now == pytest.approx(2.0)


def test_overhead_change_mid_flow(kernel, channel):
    flow = channel.start_flow(1000)
    kernel.run_until(0.5)
    channel.set_overhead("burst", 0.5)
    kernel.run_until_complete(flow.completion, timeout=10)
    # 500 done, remaining 500 at 500 B/s → one more second.
    assert kernel.now == pytest.approx(1.5)


def test_clear_overhead_restores_capacity(kernel, channel):
    channel.set_overhead("x", 0.5)
    channel.clear_overhead("x")
    assert channel.effective_capacity == pytest.approx(1000.0)
    channel.clear_overhead("x")  # idempotent


def test_overhead_clamped(channel):
    channel.set_overhead("a", 0.9)
    channel.set_overhead("b", 0.9)
    assert channel.effective_capacity > 0


def test_abort_fails_waiters_and_rebalances(kernel, channel):
    doomed = channel.start_flow(1000)
    survivor = channel.start_flow(1000)
    kernel.run_until(0.5)
    doomed.abort()
    with pytest.raises(FlowAborted):
        kernel.run_until_complete(doomed.completion)
    kernel.run_until_complete(survivor.completion, timeout=10)
    # Survivor had 750 left at 0.5, then full rate: done at 1.25.
    assert kernel.now == pytest.approx(1.25)


def test_abort_after_done_is_noop(kernel, channel):
    flow = channel.start_flow(100)
    kernel.run_until_complete(flow.completion, timeout=10)
    flow.abort()
    assert flow.completion.exception is None


def test_rate_listeners_see_changes_and_final_zero(kernel, channel):
    rates = []
    flow = channel.start_flow(1000)
    flow.on_rate_change(rates.append)
    other = channel.start_flow(1000)
    kernel.run_until_complete(flow.completion, timeout=10)
    assert rates[0] == pytest.approx(1000.0)
    assert rates[1] == pytest.approx(500.0)
    assert rates[-1] == 0.0


def test_transferred_tracks_progress(kernel, channel):
    flow = channel.start_flow(1000)
    kernel.run_until(0.25)
    channel._integrate()
    assert flow.transferred == pytest.approx(250.0)


def test_completed_flows_counter(kernel, channel):
    for _ in range(3):
        flow = channel.start_flow(10)
        kernel.run_until_complete(flow.completion, timeout=10)
    assert channel.completed_flows == 3


def test_negative_size_rejected(channel):
    with pytest.raises(ValueError):
        channel.start_flow(-1)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10_000_000),
                min_size=1, max_size=8))
def test_property_concurrent_total_time_is_total_bytes(sizes):
    """Flows started together: the last completion is at total/capacity."""
    kernel = Kernel(seed=0)
    channel = FluidChannel(kernel, capacity_bps=9999.0)
    flows = [channel.start_flow(size) for size in sizes]
    for flow in flows:
        kernel.run_until_complete(flow.completion, timeout=1e9)
    assert kernel.now == pytest.approx(sum(sizes) / 9999.0, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=20),
                  st.integers(min_value=1, max_value=1_000_000)),
        min_size=1, max_size=8,
    )
)
def test_property_staggered_flows_all_complete(starts_and_sizes):
    """No flow is ever starved or lost regardless of arrival pattern."""
    kernel = Kernel(seed=0)
    channel = FluidChannel(kernel, capacity_bps=12345.0)
    flows = []
    for start, size in starts_and_sizes:
        kernel.call_at(start, lambda s=size: flows.append(channel.start_flow(s)))
    kernel.run()
    assert len(flows) == len(starts_and_sizes)
    assert all(flow.done for flow in flows)
    assert all(flow.completion.exception is None for flow in flows)

"""The numpy shim: backend selection and bit-identical fallbacks."""

from __future__ import annotations

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.util import array

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

# Adversarial floats for the parity suite: the full finite float64 range
# including subnormals and signed zeros, where SIMD kernels historically
# diverge from scalar libm (flush-to-zero, sign-of-zero, overflow order).
adversarial = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64,
              allow_subnormal=True),
    st.sampled_from([
        0.0, -0.0, 5e-324, -5e-324, 2.2250738585072014e-308,
        -2.2250738585072014e-308, 1.7976931348623157e308,
        -1.7976931348623157e308, 1.0, -1.0,
    ]),
)


def test_backend_name_tracks_the_numpy_attribute(monkeypatch):
    if array.numpy is not None:
        assert array.backend_name() == "numpy"
    monkeypatch.setattr(array, "numpy", None)
    assert array.backend_name() == "python"


def test_have_numpy_is_frozen_at_import(monkeypatch):
    # HAVE_NUMPY reports the import-time selection; monkeypatching the
    # live attribute (what hot paths read) must not retroactively flip it.
    before = array.HAVE_NUMPY
    monkeypatch.setattr(array, "numpy", None)
    assert array.HAVE_NUMPY is before


def test_euclidean_distances_python_matches_math_sqrt(monkeypatch):
    monkeypatch.setattr(array, "numpy", None)
    xs = [0.0, 3.0, -7.5, 123.456]
    ys = [0.0, 4.0, 2.25, -9.0]
    got = array.euclidean_distances(1.0, -2.0, xs, ys)
    assert isinstance(got, list)
    for d, x, y in zip(got, xs, ys):
        dx = x - 1.0
        dy = y + 2.0
        assert d == math.sqrt(dx * dx + dy * dy)


@settings(max_examples=200, deadline=None)
@given(
    st.tuples(coords, coords),
    st.lists(st.tuples(coords, coords), max_size=20),
)
def test_euclidean_distances_backends_are_bit_identical(origin, points):
    """The ground rule the whole batch pipeline rests on: numpy's
    sqrt(dx*dx + dy*dy) is bit-identical to the math-module scalar form."""
    if array.numpy is None:
        pytest.skip("numpy inactive in this environment")
    ox, oy = origin
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    vectorized = array.euclidean_distances(ox, oy, xs, ys)
    sqrt = math.sqrt
    scalar = [
        sqrt((x - ox) * (x - ox) + (y - oy) * (y - oy)) for x, y in zip(xs, ys)
    ]
    assert [float(d) for d in vectorized] == scalar


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=30))
def test_argsort_backends_agree_and_are_stable(keys):
    expected = sorted(range(len(keys)), key=keys.__getitem__)
    assert array.argsort(keys) == expected


def test_argsort_python_fallback(monkeypatch):
    monkeypatch.setattr(array, "numpy", None)
    assert array.argsort([30, 10, 20, 10]) == [1, 3, 2, 0]
    assert array.argsort([]) == []


def test_numpy_version_tracks_the_backend(monkeypatch):
    if array.numpy is not None:
        assert array.numpy_version() == str(array.numpy.__version__)
    monkeypatch.setattr(array, "numpy", None)
    assert array.numpy_version() == ""


def test_euclidean_distances_rejects_mismatched_lengths(monkeypatch):
    with pytest.raises(ValueError, match="equal length"):
        array.euclidean_distances(0.0, 0.0, [1.0, 2.0], [3.0])
    # Identical contract under the pure-Python twin — no silent zip
    # truncation to the shorter sequence.
    monkeypatch.setattr(array, "numpy", None)
    with pytest.raises(ValueError, match="equal length"):
        array.euclidean_distances(0.0, 0.0, [1.0], [2.0, 3.0])


@settings(max_examples=300, deadline=None)
@given(
    st.tuples(adversarial, adversarial),
    st.lists(st.tuples(adversarial, adversarial), max_size=16),
)
def test_euclidean_distances_adversarial_bit_parity(origin, points):
    """Bit-for-bit parity over the full finite float64 range — subnormals,
    signed zeros, and magnitudes that overflow ``dx*dx`` to infinity must
    round (and overflow) identically under both backends."""
    if array.numpy is None:
        pytest.skip("numpy inactive in this environment")
    ox, oy = origin
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    vectorized = array.euclidean_distances(ox, oy, xs, ys)
    sqrt = math.sqrt
    scalar = [
        sqrt((x - ox) * (x - ox) + (y - oy) * (y - oy)) for x, y in zip(xs, ys)
    ]
    got = [float(d) for d in vectorized]
    assert len(got) == len(scalar)
    for g, s in zip(got, scalar):
        # Compare raw bit patterns: 0.0 == -0.0 under ==, but they are
        # different floats and a parity suite must tell them apart.
        assert math.copysign(1.0, g) == math.copysign(1.0, s)
        assert g == s


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=-8, max_value=8), max_size=40))
def test_argsort_tie_order_is_identical_across_backends(keys):
    """Heavy-tie inputs: the stable kind must keep original order for
    equal keys under numpy exactly as the pure-Python sorted() does."""
    expected = sorted(range(len(keys)), key=keys.__getitem__)
    assert array.argsort(keys) == expected
    if array.numpy is not None:
        # And the fallback agrees with the numpy path on the same input.
        np_result = array.argsort(keys)
        saved = array.numpy
        try:
            array.numpy = None
            assert array.argsort(keys) == np_result
        finally:
            array.numpy = saved


def test_repro_no_numpy_disables_the_backend_at_import():
    """REPRO_NO_NUMPY=1 must force the pure-Python backend in a fresh
    interpreter even when numpy is installed."""
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    env["PYTHONPATH"] = "src"
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.util import array; "
            "print(array.backend_name(), array.HAVE_NUMPY)",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        check=True,
    )
    assert out.stdout.split() == ["python", "False"]

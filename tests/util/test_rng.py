"""Seeded randomness and stream derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SeededRng, derive_seed, ensure_rng


def test_same_seed_same_stream():
    a = SeededRng(42)
    b = SeededRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRng(1)
    b = SeededRng(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_streams_are_independent():
    parent = SeededRng(7)
    child_a = parent.child("radio", "a")
    child_b = parent.child("radio", "b")
    seq_a = [child_a.random() for _ in range(5)]
    seq_b = [child_b.random() for _ in range(5)]
    assert seq_a != seq_b
    # Re-deriving yields the same stream.
    again = SeededRng(7).child("radio", "a")
    assert [again.random() for _ in range(5)] == seq_a


def test_derive_seed_is_stable_and_name_sensitive():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x", "y") != derive_seed(1, "xy")


def test_derive_seed_name_lists_are_unambiguous():
    # Length-prefixing: joining names with any separator must not collide
    # with the separator appearing *inside* a name.
    assert derive_seed(1, "a/b") != derive_seed(1, "a", "b")
    assert derive_seed(1, "a", "bc") != derive_seed(1, "ab", "c")
    assert derive_seed(1, "a", "", "b") != derive_seed(1, "a", "b")
    assert derive_seed(1) != derive_seed(1, "")


def test_jitter_zero_fraction_is_identity():
    rng = SeededRng(3)
    assert rng.jitter(0.5, 0.0) == 0.5


def test_jitter_bounds():
    rng = SeededRng(3)
    for _ in range(200):
        value = rng.jitter(1.0, 0.1)
        assert 0.9 <= value <= 1.1


def test_jitter_rejects_negative_fraction():
    with pytest.raises(ValueError):
        SeededRng(0).jitter(1.0, -0.1)


def test_bernoulli_bounds_checked():
    rng = SeededRng(0)
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)
    with pytest.raises(ValueError):
        rng.bernoulli(-0.1)


def test_bernoulli_extremes():
    rng = SeededRng(0)
    assert all(rng.bernoulli(1.0) for _ in range(20))
    assert not any(rng.bernoulli(0.0) for _ in range(20))


def test_bytes_length_and_determinism():
    assert SeededRng(5).bytes(16) == SeededRng(5).bytes(16)
    assert len(SeededRng(5).bytes(16)) == 16
    assert SeededRng(5).bytes(0) == b""


def test_ensure_rng_passthrough_and_default():
    rng = SeededRng(9)
    assert ensure_rng(rng) is rng
    assert isinstance(ensure_rng(None, default_seed=4), SeededRng)


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_derive_seed_in_64_bit_range(seed, name):
    derived = derive_seed(seed, name)
    assert 0 <= derived < 2**64


def test_choice_and_sample_deterministic():
    a = SeededRng(11)
    b = SeededRng(11)
    population = list(range(100))
    assert a.choice(population) == b.choice(population)
    assert a.sample(population, 10) == b.sample(population, 10)

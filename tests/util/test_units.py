"""Unit conversion helpers."""

import pytest

from repro.util import units


def test_time_constants():
    assert units.SECONDS == 1.0
    assert units.MILLISECONDS == pytest.approx(1e-3)
    assert units.MICROSECONDS == pytest.approx(1e-6)


def test_to_ms_roundtrip():
    assert units.to_ms(1.5) == 1500.0
    assert units.from_ms(units.to_ms(0.082)) == pytest.approx(0.082)


def test_size_constants_are_decimal():
    assert units.KB == 1000
    assert units.MB == 1000_000
    assert units.GB == 1000_000_000
    assert 25 * units.MB == 25_000_000


def test_bits_bytes_conversion():
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(80) == 10
    assert units.bits_to_bytes(units.bytes_to_bits(12345)) == 12345


def test_rate_helpers_match_paper_usage():
    # The paper's "100 KBps" is 100 kilobytes per second.
    assert units.kbps(100) == 100_000.0
    assert units.mbps(8.1) == pytest.approx(8_100_000.0)


def test_direct_download_times_from_rates():
    # Table 5 sanity: 30 MB at the two paper rates.
    assert 30 * units.MB / units.kbps(100) == pytest.approx(300.0)
    assert 30 * units.MB / units.kbps(1000) == pytest.approx(30.0)

"""Monotonic id generation."""

from repro.util.idgen import IdGenerator, monotonic_id


def test_ids_are_monotonic_per_namespace():
    gen = IdGenerator()
    assert gen.next("ctx") == "ctx-1"
    assert gen.next("ctx") == "ctx-2"
    assert gen.next("ctx") == "ctx-3"


def test_namespaces_are_independent():
    gen = IdGenerator()
    gen.next("a")
    gen.next("a")
    assert gen.next("b") == "b-1"
    assert gen.next("a") == "a-3"


def test_next_int_counts_from_one():
    gen = IdGenerator()
    assert gen.next_int("n") == 1
    assert gen.next_int("n") == 2


def test_string_and_int_namespaces_share_counters():
    gen = IdGenerator()
    gen.next("x")
    assert gen.next_int("x") == 2


def test_global_monotonic_id_increases():
    first = monotonic_id("test-global-ns")
    second = monotonic_id("test-global-ns")
    assert first != second
    assert int(first.rsplit("-", 1)[1]) < int(second.rsplit("-", 1)[1])

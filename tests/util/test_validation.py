"""Validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_non_negative,
    check_positive,
    check_probability,
)


def test_check_positive_accepts_and_returns():
    assert check_positive("x", 0.5) == 0.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_check_positive_rejects(value):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", value)


def test_check_non_negative_accepts_zero():
    assert check_non_negative("x", 0) == 0


def test_check_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative("x", -1e-9)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_check_probability_accepts(value):
    assert check_probability("p", value) == value


@pytest.mark.parametrize("value", [-0.01, 1.01])
def test_check_probability_rejects(value):
    with pytest.raises(ValueError):
        check_probability("p", value)


@pytest.mark.parametrize("value", [math.inf, -math.inf, math.nan])
def test_check_finite_rejects(value):
    with pytest.raises(ValueError):
        check_finite("x", value)


def test_check_finite_accepts():
    assert check_finite("x", 1e300) == 1e300

"""Parallel == serial, and grid-indexed == linear-scan, bit for bit.

The runner's contract is that fanning cells out over processes changes
wall-clock only: every structured result must match the serial drivers
field for field at any seed.  The medium's contract is that the spatial
index prunes work, never outcomes.
"""

import pytest

from repro.experiments.controlled import run_table4
from repro.experiments.disseminate_exp import run_table5
from repro.experiments.mobility_exp import run_mobility
from repro.experiments.prophet_exp import run_fig7
from repro.phy.geometry import Position
from repro.phy.mobility import Linear
from repro.phy.world import World
from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.medium import Medium
from repro.runner import run_experiment
from repro.sim.kernel import Kernel
from repro.util.rng import SeededRng

DRIVERS = {
    "table4": run_table4,
    "table5": run_table5,
    "fig7": run_fig7,
    "mobility": run_mobility,
}

SEEDS = {
    "table4": (1, 2),
    "table5": (11, 12),
    "fig7": (21, 22),
    "mobility": (41, 42),
}


@pytest.mark.parametrize("experiment", ["table4", "table5", "fig7", "mobility"])
def test_parallel_equals_serial_at_two_seeds(experiment):
    seeds = list(SEEDS[experiment])
    serial = run_experiment(experiment, seeds=seeds, serial=True)
    parallel = run_experiment(experiment, seeds=seeds, workers=4)
    # Field-for-field: driver results are dataclasses comparing by value.
    assert serial.results == parallel.results
    # And both match the serial driver run outside the runner entirely.
    driver = DRIVERS[experiment]
    for seed, grid in zip(seeds, parallel.results_by_seed()):
        assert grid == driver(seed=seed)


def test_runner_timings_are_recorded():
    report = run_experiment("fig7", serial=True)
    assert len(report.outcomes) == 3
    assert all(outcome.wall_s > 0.0 for outcome in report.outcomes)
    assert report.total_wall_s >= max(o.wall_s for o in report.outcomes)
    payload = report.to_bench_dict()
    assert payload["experiment"] == "fig7"
    assert len(payload["cells"]) == 3
    assert all("wall_s" in cell and "result_digest" in cell
               for cell in payload["cells"])


def test_bench_payload_records_array_backend(monkeypatch):
    from repro.util import array

    report = run_experiment("fig7", serial=True)
    payload = report.to_bench_dict()
    assert payload["array_backend"] == array.backend_name()
    assert payload["numpy_version"] == array.numpy_version()
    if array.numpy is not None:
        assert payload["array_backend"] == "numpy"
        assert payload["numpy_version"]  # non-empty version string

    # The fields snapshot the backend at report construction: a digest
    # from a pure-Python run must say so even if numpy exists on disk.
    monkeypatch.setattr(array, "numpy", None)
    fallback = run_experiment("fig7", serial=True)
    assert fallback.to_bench_dict()["array_backend"] == "python"
    assert fallback.to_bench_dict()["numpy_version"] == ""


# -- grid vs linear medium ---------------------------------------------------

NODE_COUNT = 200
ARENA_M = 400.0


def _build_layout(use_spatial_index):
    """200 BLE devices (10% mobile) on a fixed random layout, all scanning."""
    kernel = Kernel(seed=7)
    world = World(kernel)
    medium = Medium(kernel, world, use_spatial_index=use_spatial_index)
    layout_rng = SeededRng(424242)
    radios = []
    heard = {}
    for i in range(NODE_COUNT):
        x = layout_rng.uniform(0.0, ARENA_M)
        y = layout_rng.uniform(0.0, ARENA_M)
        name = f"n{i}"
        if i % 10 == 0:  # a roaming minority exercises the unbucketed path
            node = world.add_node(name, mobility=Linear(Position(x, y), (1.0, -0.5)))
        else:
            node = world.add_node(name, position=Position(x, y))
        device = Device(kernel, node)
        radio = device.add_radio(BleRadio(device, medium))
        radio.enable()
        heard[name] = []
        radio.start_scanning(
            lambda payload, mac, distance, log=heard[name]: log.append(
                (payload, round(distance, 9))
            )
        )
        radios.append(radio)
    return kernel, medium, radios, heard


def _run_broadcast_round(use_spatial_index):
    kernel, medium, radios, heard = _build_layout(use_spatial_index)
    kernel.run_until(1.0)
    for index, radio in enumerate(radios):
        if index % 5 == 0:
            radio.advertise_once(b"hi%d" % index)
    kernel.run_until(5.0)
    counters = (medium.frames_sent, medium.frames_delivered, medium.frames_dropped)
    return heard, counters


def test_indexed_medium_delivers_identical_frame_set():
    linear_heard, linear_counters = _run_broadcast_round(use_spatial_index=False)
    grid_heard, grid_counters = _run_broadcast_round(use_spatial_index=True)
    assert grid_counters == linear_counters
    assert grid_heard == linear_heard
    # Sanity: the layout actually produced traffic to compare.
    assert linear_counters[1] > 0


def test_indexed_medium_reachable_sets_match_linear():
    kernel_a, medium_a, radios_a, _ = _build_layout(use_spatial_index=False)
    kernel_b, medium_b, radios_b, _ = _build_layout(use_spatial_index=True)
    kernel_a.run_until(1.0)
    kernel_b.run_until(1.0)
    for radio_a, radio_b in zip(radios_a, radios_b):
        names_a = [r.device.name for r in medium_a.reachable_from(radio_a)]
        names_b = [r.device.name for r in medium_b.reachable_from(radio_b)]
        assert names_a == names_b
    assert any(medium_a.reachable_from(r) for r in radios_a)

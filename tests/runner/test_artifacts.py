"""The shared-memory artifact transport and the CellResult envelope.

Covers the redesign's contract from both ends: the worker side (canonical
encoding, export into named segments, per-artifact inline fallback) and the
parent side (verified fetch, deterministic unlink, run-scoped hygiene sweep
after a dead worker).  The transport must never change results: serial,
parallel-inline, and parallel-shm runs of the same grid produce identical
value and artifact digests.
"""

import os
import pickle

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.runner import artifacts as artifacts_module
from repro.runner.artifacts import (
    Artifact,
    ArtifactError,
    ArtifactHandle,
    AttachedResult,
    CellResult,
    attach,
    decode_payload,
    encode_payload,
    export_cell_artifacts,
    make_run_token,
    payload_digest,
    shared_memory_available,
    sweep_segments,
)
from repro.runner.engine import execute_jobs, run_experiment
from repro.runner.jobs import Job, jobs_for
from repro.trace.recorder import TraceRecorder

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this host"
)


# -- canonical payload encoding ------------------------------------------------


def test_encode_decode_round_trip_tuples_become_lists():
    payload = {"events": [(0.5, "a", "tick", {"n": 1})], "dropped": 0}
    data = encode_payload(payload)
    assert decode_payload(data) == {
        "events": [[0.5, "a", "tick", {"n": 1}]], "dropped": 0
    }


def test_encoding_is_digest_stable():
    payload = {"events": [(1.0, "s", "k", {})]}
    assert encode_payload(payload) == encode_payload(payload)
    assert payload_digest(encode_payload(payload)) == payload_digest(
        encode_payload({"events": [[1.0, "s", "k", {}]]})
    )


def test_non_string_keys_rejected():
    with pytest.raises(ArtifactError, match="keys must be str"):
        encode_payload({1: "x"})


def test_non_json_values_rejected():
    with pytest.raises(ArtifactError, match="JSON-representable"):
        encode_payload({"x": object()})


# -- the Artifact state machine ------------------------------------------------


def test_inline_artifact_loads_without_shared_memory():
    artifact = Artifact.from_payload("trace", {"n": 7})
    assert not artifact.is_shared
    assert artifact.transport == "inline"
    assert artifact.load() == {"n": 7}
    assert artifact.length == len(encode_payload({"n": 7}))


def test_artifact_needs_exactly_one_of_data_or_handle():
    with pytest.raises(ArtifactError):
        Artifact("x")
    with pytest.raises(ArtifactError):
        Artifact("x", data=b"{}", handle=ArtifactHandle("raz", 2, "00"))


@needs_shm
def test_shared_round_trip_unlinks_the_segment():
    name = f"ratrt{os.getpid():x}"
    artifact = Artifact.from_payload("trace", {"big": list(range(64))})
    shared = artifact.to_shared(name)
    assert shared.is_shared and shared.transport == "shm"
    assert shared.handle.segment == name
    assert shared.digest == artifact.digest
    fetched = shared.fetch()
    assert fetched.load() == {"big": list(range(64))}
    assert not shared.is_shared
    assert shared.transport == "shm"  # provenance survives the fetch
    # Deterministic unlink: the segment is gone the moment it was read.
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


@needs_shm
def test_fetch_rejects_corrupted_segment():
    name = f"racor{os.getpid():x}"
    shared = Artifact.from_payload("trace", {"n": 123456}).to_shared(name)
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    segment.buf[0] ^= 0xFF
    segment.close()
    with pytest.raises(ArtifactError, match="digest mismatch"):
        shared.fetch()
    # Even a rejected segment is unlinked — verification failures can't leak.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


@needs_shm
def test_fetch_reports_vanished_segment():
    gone = Artifact(
        "trace", handle=ArtifactHandle(f"rax{os.getpid():x}", 4, "beef")
    )
    with pytest.raises(ArtifactError, match="is gone"):
        gone.fetch()


def test_sweep_refuses_foreign_prefixes():
    with pytest.raises(ValueError):
        sweep_segments("psm_12345")


# -- the CellResult envelope ---------------------------------------------------


def test_from_raw_wraps_bare_values():
    cell = CellResult.from_raw("fig7", "Omni", 21, {"latency": 5.0})
    assert cell.value == {"latency": 5.0}
    assert cell.result == cell.value  # back-compat alias
    assert cell.artifacts == {}


def test_from_raw_encodes_attached_payloads():
    raw = attach({"latency": 5.0}, trace={"events": []})
    assert isinstance(raw, AttachedResult)
    cell = CellResult.from_raw("fig7", "Omni", 21, raw)
    assert cell.value == {"latency": 5.0}
    assert cell.artifact("trace").load() == {"events": []}
    with pytest.raises(KeyError, match="attached: trace"):
        cell.artifact("energy_timeline")


def test_digest_line_covers_value_and_artifacts():
    bare = CellResult.from_raw("fig7", "Omni", 21, {"latency": 5.0})
    attached = CellResult.from_raw(
        "fig7", "Omni", 21, attach({"latency": 5.0}, trace={"events": []})
    )
    assert bare.result_digest == attached.result_digest  # value-only digest
    assert bare.digest_line() != attached.digest_line()
    assert attached.digest_line().startswith("fig7/Omni@21 ")
    assert "trace:" in attached.digest_line()


# -- engine integration: parity across transports ------------------------------


def test_serial_run_keeps_artifacts_inline():
    report = run_experiment("fig7", serial=True, attach_trace=True,
                            attach_energy_timeline=True)
    assert len(report.outcomes) == 3
    for outcome in report.outcomes:
        assert set(outcome.artifacts) == {"trace", "energy_timeline"}
        assert outcome.artifact("trace").transport == "inline"
        trace = TraceRecorder.from_payload(outcome.artifact("trace").load())
        assert trace.count("bundle_created") == 1
        assert trace.count("tick") > 0
    payload = report.to_bench_dict()
    for cell in payload["cells"]:
        assert cell["artifacts"]["trace"]["transport"] == "inline"
        assert cell["artifacts"]["trace"]["bytes"] > 0


def test_parallel_artifacts_digest_match_serial():
    report = run_experiment("fig7", workers=2, compare_serial=True,
                            attach_trace=True, attach_energy_timeline=True)
    assert report.digest_match is True
    assert report.digest_mismatches == []
    expected = "shm" if shared_memory_available() else "inline"
    for outcome in report.outcomes:
        assert outcome.artifact("trace").transport == expected
        # Fetched on arrival: the parent holds real bytes, not handles.
        assert not outcome.artifact("trace").is_shared
        timeline = outcome.artifact("energy_timeline").load()
        assert timeline["events"], "relay timeline should have transitions"


def test_inline_fallback_is_bit_identical_to_shared_memory():
    jobs = jobs_for("fig7", attach_trace=True)
    with_shm, _, _ = execute_jobs(jobs, workers=2, use_shared_memory=True)
    without, _, _ = execute_jobs(jobs, workers=2, use_shared_memory=False)
    for shm_cell, inline_cell in zip(with_shm, without):
        assert shm_cell.digest_line() == inline_cell.digest_line()
        assert inline_cell.artifact("trace").transport == "inline"
        assert (shm_cell.artifact("trace").bytes()
                == inline_cell.artifact("trace").bytes())


# -- hygiene: a worker that dies mid-cell must not leak segments ---------------


def _leak_and_die(segment_name: str):
    """A driver that crashes its worker after allocating a run segment."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=segment_name, create=True, size=64)
    segment.buf[:5] = b"leak!"
    segment.close()
    artifacts_module._tracker_unregister(segment_name)
    os._exit(1)


@needs_shm
@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="hygiene sweep needs a scannable /dev/shm")
def test_dead_worker_leaves_no_segments(monkeypatch):
    token = f"radie{os.getpid():x}"
    monkeypatch.setattr(artifacts_module, "make_run_token", lambda: token)
    doomed = Job(experiment="selftest", cell="die", fn=_leak_and_die,
                 args=(f"{token}j0a0",))
    with pytest.raises((BrokenProcessPool, OSError)):
        execute_jobs([doomed], workers=1, tripwire=False)
    # The engine's finally-sweep ran despite the broken pool: nothing with
    # this run's prefix survives in /dev/shm.
    leftovers = [name for name in os.listdir("/dev/shm")
                 if name.startswith(token)]
    assert leftovers == []


# -- the acceptance bar: queue bytes bounded, independent of trace length ------


def _synthetic_trace(ticks: int) -> dict:
    return {
        "format": "synthetic/v1",
        "events": [[index * 0.1, "src", "tick", {"n": index}]
                   for index in range(ticks)],
        "dropped": 0,
    }


def _queue_bytes(ticks: int, scope: str) -> int:
    """Bytes that would cross the pool queue for one exported cell."""
    cell = CellResult.from_raw("selftest", f"t{ticks}", 0,
                               attach({"ticks": ticks},
                                      trace=_synthetic_trace(ticks)))
    exported = export_cell_artifacts(cell, scope)
    return len(pickle.dumps(exported))


@needs_shm
def test_queue_bytes_bounded_by_handle_size():
    token = make_run_token()
    try:
        small = _queue_bytes(10, f"{token}j0")
        large = _queue_bytes(10_000, f"{token}j1")
    finally:
        sweep_segments(token)
    # A 1000× longer trace may only move the queue payload by the few bytes
    # of a bigger length integer — the handle, not the data, crosses.
    assert abs(large - small) < 64, (
        f"queue bytes grew with trace length: {small}B -> {large}B"
    )
    # Reference point: the same cells kept inline DO scale with the trace.
    inline_small = len(pickle.dumps(CellResult.from_raw(
        "selftest", "s", 0, attach({}, trace=_synthetic_trace(10)))))
    inline_large = len(pickle.dumps(CellResult.from_raw(
        "selftest", "l", 0, attach({}, trace=_synthetic_trace(10_000)))))
    assert inline_large > 100 * inline_small

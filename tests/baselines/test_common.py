"""Baseline shared machinery: codec, directory, WiFi path."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.common import (
    BaselineDirectory,
    DataEnvelope,
    decode_data,
    decode_discovery,
    derive_device_id,
    encode_data,
    encode_discovery,
)
from repro.net.addresses import MeshAddress
from repro.net.payload import VirtualPayload


class TestCodec:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.binary(max_size=100))
    def test_property_discovery_roundtrip_with_mesh(self, device_id, metadata):
        raw = encode_discovery(device_id, MeshAddress(42), metadata)
        decoded = decode_discovery(raw)
        assert decoded == (device_id, MeshAddress(42), metadata)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.binary(max_size=100))
    def test_property_discovery_roundtrip_without_mesh(self, device_id, metadata):
        raw = encode_discovery(device_id, None, metadata)
        assert decode_discovery(raw) == (device_id, None, metadata)

    def test_decode_discovery_rejects_alien_bytes(self):
        assert decode_discovery(b"") is None
        assert decode_discovery(b"\xff" + bytes(20)) is None

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.binary(max_size=200))
    def test_property_data_roundtrip(self, device_id, payload):
        assert decode_data(encode_data(device_id, payload)) == (device_id, payload)

    def test_decode_data_rejects_alien_bytes(self):
        assert decode_data(b"\x10" + bytes(8)) is None  # discovery type byte


class TestDataEnvelope:
    def test_wrap_unwrap_roundtrip(self):
        envelope = DataEnvelope(7, VirtualPayload(1000, "blob"))
        assert DataEnvelope.unwrap(envelope.wrap()) == envelope

    def test_wire_size_includes_header(self):
        envelope = DataEnvelope(7, VirtualPayload(1000))
        assert envelope.wire_size == 1000 + 9

    def test_unwrap_real_bytes(self):
        raw = encode_data(9, b"payload")
        envelope = DataEnvelope.unwrap(raw)
        assert envelope == DataEnvelope(9, b"payload")

    def test_unwrap_alien_returns_none(self):
        assert DataEnvelope.unwrap(VirtualPayload(10)) is None
        assert DataEnvelope.unwrap(b"\xff\xff") is None


class TestDirectory:
    def test_observe_and_query(self, kernel):
        directory = BaselineDirectory(kernel)
        directory.observe(1, b"meta", mesh_address=MeshAddress(5))
        entry = directory.entry(1)
        assert entry.metadata == b"meta"
        assert entry.mesh_address == MeshAddress(5)

    def test_staleness(self, kernel):
        directory = BaselineDirectory(kernel, staleness_s=5.0)
        directory.observe(1, b"x")
        kernel.run_until(6.0)
        assert directory.entry(1) is None
        assert directory.peers() == []

    def test_ble_learned_flag_sticks(self, kernel):
        directory = BaselineDirectory(kernel)
        directory.observe(1, b"", mesh_address=MeshAddress(5), via_ble=True)
        directory.observe(1, b"", mesh_address=MeshAddress(5), via_ble=False)
        assert directory.entry(1).mesh_learned_via_ble

    def test_announcement_waiters_fire_on_wifi_observation(self, kernel):
        directory = BaselineDirectory(kernel)
        waiter = directory.next_wifi_announcement(1)
        directory.observe(1, b"", mesh_address=MeshAddress(5), via_ble=True)
        assert not waiter.done  # BLE observations do not satisfy the wait
        directory.observe(1, b"", mesh_address=MeshAddress(5), via_ble=False)
        assert waiter.done

    def test_peers_sorted(self, kernel):
        directory = BaselineDirectory(kernel)
        directory.observe(5, b"")
        directory.observe(2, b"")
        assert directory.peers() == [2, 5]


def test_derive_device_id_matches_across_systems(make_device):
    device = make_device("same")
    assert derive_device_id(device) == derive_device_id(device)

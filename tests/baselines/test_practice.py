"""State of the Practice systems."""

import pytest

from repro.baselines.practice import SpBleSystem, SpWifiSystem
from repro.net.payload import VirtualPayload
from repro.radio.frame import RadioKind


class TestSpBle:
    @pytest.fixture
    def pair(self, kernel, make_device):
        a = SpBleSystem(make_device("a", x=0))
        b = SpBleSystem(make_device("b", x=10))
        a.start()
        b.start()
        return a, b

    def test_wifi_radio_powered_off(self, kernel, make_device):
        device = make_device("a")
        system = SpBleSystem(device)
        system.start()
        assert not device.radio(RadioKind.WIFI).enabled
        assert "wifi.standby" not in device.meter.active_components()

    def test_discovery_via_ble(self, kernel, pair):
        a, b = pair
        kernel.run_until(2.0)
        assert b.local_id in a.peers()
        assert a.local_id in b.peers()

    def test_metadata_dissemination(self, kernel, pair):
        a, b = pair
        heard = []
        b.on_metadata(lambda peer, payload: heard.append((peer, payload)))
        a.set_metadata(b"svc")
        kernel.run_until(2.0)
        assert (a.local_id, b"svc") in heard

    def test_small_data_roundtrip(self, kernel, pair):
        a, b = pair
        kernel.run_until(1.0)
        received = []
        b.on_receive(lambda peer, payload: received.append((kernel.now, payload)))
        start = kernel.now
        results = []
        a.send(b.local_id, b"x" * 30, lambda ok, detail: results.append(ok))
        kernel.run_until(start + 1.0)
        assert results == [True]
        assert received[0][1] == b"x" * 30
        assert received[0][0] - start == pytest.approx(0.041, abs=0.005)

    def test_bulk_data_rejected(self, kernel, pair):
        a, b = pair
        kernel.run_until(1.0)
        results = []
        a.send(b.local_id, VirtualPayload(25_000_000),
               lambda ok, detail: results.append((ok, detail)))
        kernel.run_until(kernel.now + 1.0)
        assert results[0][0] is False
        assert "bulk" in results[0][1]

    def test_send_to_unknown_peer_fails(self, kernel, pair):
        a, _ = pair
        results = []
        a.send(0xDEAD, b"x", lambda ok, detail: results.append(ok))
        kernel.run_until(0.5)
        assert results == [False]

    def test_stop_silences(self, kernel, pair):
        a, b = pair
        kernel.run_until(2.0)
        a.stop()
        assert b.directory.entry(a.local_id) is not None
        kernel.run_until(15.0)  # past the 10 s directory staleness
        assert b.directory.entry(a.local_id) is None


class TestSpWifi:
    @pytest.fixture
    def pair(self, kernel, make_device, mesh):
        a = SpWifiSystem(make_device("a", x=0, radios=("wifi",)), mesh)
        b = SpWifiSystem(make_device("b", x=10, radios=("wifi",)), mesh)
        a.start()
        b.start()
        return a, b

    def test_discovery_via_multicast(self, kernel, pair):
        a, b = pair
        kernel.run_until(5.0)
        assert b.local_id in a.peers()

    def test_first_send_pays_discovery_sequence(self, kernel, pair):
        a, b = pair
        kernel.run_until(5.0)
        received = []
        b.on_receive(lambda peer, payload: received.append(kernel.now))
        start = kernel.now
        results = []
        a.send(b.local_id, b"req", lambda ok, detail: results.append(ok))
        kernel.run_until(start + 10.0)
        assert results == [True]
        elapsed = received[0] - start
        assert 2.8 < elapsed < 3.6  # scan + join + announcement wait

    def test_reply_is_direct(self, kernel, pair):
        a, b = pair
        kernel.run_until(5.0)
        replies = []
        b.on_receive(lambda peer, payload: b.send(peer, b"pong", None))
        a.on_receive(lambda peer, payload: replies.append(kernel.now))
        start = kernel.now
        a.send(b.local_id, b"ping", None)
        kernel.run_until(start + 10.0)
        request_arrival = start + 3.3
        assert replies and replies[0] - request_arrival < 0.5

    def test_multicast_data_mode(self, kernel, make_device, mesh):
        a = SpWifiSystem(make_device("a", x=0, radios=("wifi",)), mesh,
                         multicast_data=True)
        b = SpWifiSystem(make_device("b", x=10, radios=("wifi",)), mesh,
                         multicast_data=True)
        c = SpWifiSystem(make_device("c", x=5, y=5, radios=("wifi",)), mesh,
                         multicast_data=True)
        for system in (a, b, c):
            system.start()
        assert a.is_broadcast
        kernel.run_until(5.0)
        received = []
        b.on_receive(lambda peer, payload: received.append(("b", payload)))
        c.on_receive(lambda peer, payload: received.append(("c", payload)))
        start = kernel.now
        payload = VirtualPayload(13_100)  # ~0.1 s of the multicast pool
        results = []
        a.send(b.local_id, payload, lambda ok, detail: results.append(ok))
        kernel.run_until(start + 5.0)
        assert results == [True]
        # One multicast reached both peers.
        assert {tag for tag, _ in received} == {"b", "c"}

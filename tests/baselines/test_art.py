"""State of the Art multi-radio middleware."""

import pytest

from repro.baselines.art import SaSystem
from repro.net.payload import VirtualPayload
from repro.radio.frame import RadioKind


@pytest.fixture
def pair(kernel, make_device, mesh):
    a = SaSystem(make_device("a", x=0), mesh)
    b = SaSystem(make_device("b", x=10), mesh)
    a.start()
    b.start()
    return a, b


def test_discovery_runs_on_all_technologies(kernel, make_device, mesh):
    device = make_device("a", x=0)
    system = SaSystem(device, mesh)
    system.start()
    kernel.run_until(5.0)
    # BLE advertising AND WiFi multicast both active — SA's defining trait
    # (and the reason its idle energy is ~23 mA in Table 4).
    assert device.radio(RadioKind.BLE).adv_events_sent > 5
    assert device.radio(RadioKind.WIFI).multicasts_sent > 5


def test_mutual_discovery_over_ble_is_fast(kernel, pair):
    a, b = pair
    kernel.run_until(1.0)
    assert b.local_id in a.peers()


def test_ble_learned_mesh_address(kernel, pair):
    a, b = pair
    kernel.run_until(1.5)
    entry = a.directory.entry(b.local_id)
    assert entry.mesh_address is not None
    assert entry.mesh_learned_via_ble


def test_metadata_on_both_channels(kernel, pair):
    a, b = pair
    heard = []
    b.on_metadata(lambda peer, payload: heard.append(payload))
    a.set_metadata(b"svc")
    kernel.run_until(3.0)
    assert b"svc" in heard


def test_oversized_ble_metadata_drops_mesh_address(kernel, pair):
    a, _ = pair
    a.set_metadata(bytes(12))  # 10 + 8 + 12 = 30 > 27: mesh must drop
    payload = a._ble_discovery_payload()
    assert len(payload) <= 27
    from repro.baselines.common import decode_discovery

    device_id, mesh_address, metadata = decode_discovery(payload)
    assert mesh_address is None
    assert metadata == bytes(12)


def test_wifi_data_pays_scan_connect_but_skips_wait_with_ble_hint(kernel, pair):
    a, b = pair
    kernel.run_until(1.0)
    received = []
    b.on_receive(lambda peer, payload: received.append(kernel.now))
    start = kernel.now
    a.send(b.local_id, VirtualPayload(30), None)
    kernel.run_until(start + 10.0)
    elapsed = received[0] - start
    # scan (1.8) + connect (1.0) + transfer; no announcement wait because
    # the mesh address was learned over BLE (Table 4's SA 2793 ms row).
    assert 2.75 < elapsed < 3.0


def test_data_tech_forced_ble(kernel, make_device, mesh):
    a = SaSystem(make_device("a", x=0), mesh, data_tech="ble")
    b = SaSystem(make_device("b", x=10), mesh, data_tech="ble")
    a.start()
    b.start()
    kernel.run_until(1.0)
    received = []
    b.on_receive(lambda peer, payload: received.append(kernel.now))
    start = kernel.now
    a.send(b.local_id, b"x" * 30, None)
    kernel.run_until(start + 1.0)
    assert received and received[0] - start == pytest.approx(0.041, abs=0.005)


def test_forced_ble_cannot_carry_bulk(kernel, make_device, mesh):
    a = SaSystem(make_device("a", x=0), mesh, data_tech="ble")
    b = SaSystem(make_device("b", x=10), mesh, data_tech="ble")
    a.start()
    b.start()
    kernel.run_until(1.0)
    results = []
    a.send(b.local_id, VirtualPayload(25_000_000),
           lambda ok, detail: results.append(ok))
    kernel.run_until(kernel.now + 1.0)
    assert results == [False]


def test_auto_policy_prefers_wifi_for_bulk(kernel, pair):
    a, b = pair
    kernel.run_until(1.0)
    received = []
    b.on_receive(lambda peer, payload: received.append(payload))
    a.send(b.local_id, VirtualPayload(25_000_000), None)
    kernel.run_until(kernel.now + 10.0)
    assert received and received[0].size == 25_000_000


def test_wifi_only_configuration(kernel, make_device, mesh):
    a = SaSystem(make_device("a", x=0, radios=("wifi",)), mesh)
    b = SaSystem(make_device("b", x=10, radios=("wifi",)), mesh)
    a.start()
    b.start()
    kernel.run_until(5.0)
    assert b.local_id in a.peers()
    assert a.ble_discovery is None


def test_unknown_data_tech_rejected(make_device, mesh):
    with pytest.raises(ValueError):
        SaSystem(make_device("a"), mesh, data_tech="carrier-pigeon")


def test_send_to_unknown_peer_fails(kernel, pair):
    a, _ = pair
    results = []
    a.send(0xFEED, b"x", lambda ok, detail: results.append((ok, detail)))
    kernel.run_until(0.5)
    assert results[0][0] is False

"""The peer mapping."""

import pytest

from repro.core.address import OmniAddress
from repro.core.peers import PeerTable
from repro.core.tech import TechType
from repro.net.addresses import MacAddress, MeshAddress

PEER = OmniAddress(0xAAAA)
OTHER = OmniAddress(0xBBBB)


@pytest.fixture
def table(kernel):
    return PeerTable(kernel, staleness_s=10.0)


def test_observe_creates_record(kernel, table):
    record = table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    assert PEER in table
    assert record.omni_address == PEER
    assert table.record(PEER) is record


def test_entry_lookup(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    entry = table.entry(PEER, TechType.BLE_BEACON)
    assert entry.address == MacAddress(1)
    assert table.entry(PEER, TechType.WIFI_TCP) is None


def test_reverse_lookup(kernel, table):
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(9))
    assert table.omni_for(TechType.WIFI_TCP, MeshAddress(9)) == PEER
    assert table.omni_for(TechType.WIFI_TCP, MeshAddress(10)) is None


def test_address_change_replaces_reverse_mapping(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(2))
    assert table.omni_for(TechType.BLE_BEACON, MacAddress(1)) is None
    assert table.omni_for(TechType.BLE_BEACON, MacAddress(2)) == PEER


def test_fast_peer_flag_sticks(kernel, table):
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(1), fast_peer=True)
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(1), fast_peer=False)
    assert table.entry(PEER, TechType.WIFI_TCP).fast_peer


def test_fast_peer_flag_resets_with_new_address(kernel, table):
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(1), fast_peer=True)
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(2), fast_peer=False)
    assert not table.entry(PEER, TechType.WIFI_TCP).fast_peer


def test_stale_entries_invisible(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    kernel.run_until(11.0)
    assert table.entry(PEER, TechType.BLE_BEACON) is None
    assert table.neighbors() == []


def test_refresh_keeps_entry_fresh(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    kernel.run_until(8.0)
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    kernel.run_until(15.0)
    assert table.entry(PEER, TechType.BLE_BEACON) is not None


def test_expire_drops_and_reports(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    kernel.run_until(5.0)
    table.observe(OTHER, TechType.BLE_BEACON, MacAddress(2))
    kernel.run_until(12.0)
    dropped = table.expire()
    assert dropped == [PEER]
    assert PEER not in table
    assert table.omni_for(TechType.BLE_BEACON, MacAddress(1)) is None
    assert OTHER in table


def test_forget_removes_everything(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(2))
    table.forget(PEER)
    assert PEER not in table
    assert table.omni_for(TechType.WIFI_TCP, MeshAddress(2)) is None
    table.forget(PEER)  # idempotent


def test_neighbors_sorted_by_address(kernel, table):
    table.observe(OTHER, TechType.BLE_BEACON, MacAddress(2))
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    addresses = [record.omni_address for record in table.neighbors()]
    assert addresses == sorted(addresses)


def test_fresh_techs_ordered_by_energy_rank(kernel, table):
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(1))
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(2))
    record = table.record(PEER)
    techs = record.fresh_techs(kernel.now, 10.0)
    assert techs[0] is TechType.BLE_BEACON  # cheapest first


def test_peers_needing_only_expensive_tech(kernel, table):
    # PEER is only reachable via WiFi multicast; OTHER also has BLE.
    table.observe(PEER, TechType.WIFI_MULTICAST, MeshAddress(1))
    table.observe(OTHER, TechType.WIFI_MULTICAST, MeshAddress(2))
    table.observe(OTHER, TechType.BLE_BEACON, MacAddress(3))
    needing = table.peers_needing(TechType.WIFI_MULTICAST)
    assert [record.omni_address for record in needing] == [PEER]


def test_peers_needing_empty_when_cheaper_covers_all(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    table.observe(PEER, TechType.WIFI_MULTICAST, MeshAddress(2))
    assert table.peers_needing(TechType.WIFI_MULTICAST) == []


def test_peers_needing_reflects_staleness(kernel, table):
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1))
    table.observe(PEER, TechType.WIFI_MULTICAST, MeshAddress(2))
    kernel.run_until(8.0)
    # Refresh only the multicast sighting; the BLE one goes stale.
    table.observe(PEER, TechType.WIFI_MULTICAST, MeshAddress(2))
    kernel.run_until(11.0)
    needing = table.peers_needing(TechType.WIFI_MULTICAST)
    assert [record.omni_address for record in needing] == [PEER]

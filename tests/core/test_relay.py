"""Multi-hop context relay (BLE-Mesh future-work extension)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address import OmniAddress
from repro.core.manager import OmniConfig
from repro.core.relay import (
    RELAY_HEADER_BYTES,
    RelayCache,
    RelayConfig,
    decode_relay,
    encode_relay,
)
from repro.core.security import SymmetricContextCipher
from repro.experiments.scenario import OMNI_TECHS_BLE_ONLY, Testbed
from repro.phy.geometry import Position

ORIGIN = OmniAddress(0xABCDEF)


class TestFraming:
    @given(st.integers(min_value=0, max_value=255), st.binary(max_size=50))
    def test_property_roundtrip(self, ttl, payload):
        raw = encode_relay(ttl, ORIGIN, payload)
        assert decode_relay(raw) == (ttl, ORIGIN, payload)
        assert len(raw) == RELAY_HEADER_BYTES + len(payload)

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            encode_relay(256, ORIGIN, b"")

    def test_short_frame_rejected(self):
        assert decode_relay(b"\x01short") is None


class TestRelayConfig:
    @pytest.mark.parametrize("kwargs", [
        {"ttl": 0}, {"ttl": 16}, {"dedup_window_s": 0},
        {"rebroadcast_delay_s": -1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RelayConfig(**kwargs)


class TestRelayCache:
    def test_suppresses_within_window(self):
        cache = RelayCache(window_s=10.0)
        assert cache.should_relay(ORIGIN, b"x", now=0.0)
        assert not cache.should_relay(ORIGIN, b"x", now=5.0)

    def test_expires_after_window(self):
        cache = RelayCache(window_s=10.0)
        cache.should_relay(ORIGIN, b"x", now=0.0)
        assert cache.should_relay(ORIGIN, b"x", now=11.0)
        assert len(cache) == 1  # the stale entry was pruned

    def test_distinguishes_origin_and_payload(self):
        cache = RelayCache(window_s=10.0)
        cache.should_relay(ORIGIN, b"x", now=0.0)
        assert cache.should_relay(OmniAddress(2), b"x", now=0.0)
        assert cache.should_relay(ORIGIN, b"y", now=0.0)


def _chain(testbed, positions, relay=RelayConfig(), key=None):
    """BLE-only devices at the given x positions (range: 30 m)."""
    managers = []
    for index, x in enumerate(positions):
        config = OmniConfig(
            context_relay=relay,
            context_cipher=SymmetricContextCipher(
                key, testbed.kernel.rng.child("k", str(index))
            ) if key else None,
        )
        device = testbed.add_device(f"n{index}", position=Position(x, 0),
                                    radio_kinds={"ble", "wifi"})
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_ONLY, config)
        manager.enable()
        managers.append(manager)
    return managers


class TestMultiHop:
    def test_two_hop_context_delivery(self):
        """A(0) — B(25) — C(50): A and C are out of mutual BLE range, yet
        C hears A's context through B's relay."""
        testbed = Testbed(seed=601)
        a, b, c = _chain(testbed, [0.0, 25.0, 50.0])
        received = []
        c.request_context(lambda source, ctx: received.append((source, ctx)))
        a.add_context({"interval_s": 0.5}, b"far", None)
        testbed.kernel.run_until(5.0)
        assert a.omni_address not in c.neighbors()  # genuinely out of range
        assert (a.omni_address, b"far") in received  # yet the context arrived

    def test_without_relay_no_delivery(self):
        testbed = Testbed(seed=602)
        a, b, c = _chain(testbed, [0.0, 25.0, 50.0], relay=None)
        received = []
        c.request_context(lambda source, ctx: received.append(ctx))
        a.add_context({"interval_s": 0.5}, b"far", None)
        testbed.kernel.run_until(5.0)
        assert b"far" not in received

    def test_ttl_bounds_hop_count(self):
        """ttl = allowed relay transmissions: ttl=1 reaches the two-hop
        neighbor (one relay) but not the three-hop one."""
        testbed = Testbed(seed=603)
        a, b, c, d = _chain(testbed, [0.0, 25.0, 50.0, 75.0],
                            relay=RelayConfig(ttl=1))
        received_c, received_d = [], []
        c.request_context(lambda source, ctx: received_c.append(ctx))
        d.request_context(lambda source, ctx: received_d.append(ctx))
        a.add_context({"interval_s": 0.5}, b"hop", None)
        testbed.kernel.run_until(6.0)
        assert b"hop" in received_c  # one relay hop allowed
        assert b"hop" not in received_d  # second relay hop forbidden

    def test_ttl_three_reaches_third_hop(self):
        testbed = Testbed(seed=604)
        a, b, c, d = _chain(testbed, [0.0, 25.0, 50.0, 75.0],
                            relay=RelayConfig(ttl=3))
        received_d = []
        d.request_context(lambda source, ctx: received_d.append(ctx))
        a.add_context({"interval_s": 0.5}, b"hop", None)
        testbed.kernel.run_until(8.0)
        assert b"hop" in received_d

    def test_dedup_bounds_relay_traffic(self):
        """Each periodic beacon is relayed at most once per dedup window,
        so the relay adds O(1) advertisements per window, not per period."""
        testbed = Testbed(seed=605)
        a, b, c = _chain(testbed, [0.0, 25.0, 50.0],
                         relay=RelayConfig(ttl=2, dedup_window_s=60.0))
        a.add_context({"interval_s": 0.5}, b"one", None)
        testbed.kernel.run_until(20.0)
        ble_b = b.device.radio("ble")
        # b's advertisements: its own address beacon (~40 over 20 s) plus a
        # bounded handful of relays — far fewer than one per period (40).
        assert ble_b.adv_events_sent < 55

    def test_relay_carries_sealed_context_end_to_end(self):
        """Relaying works through a keyless relay... all nodes share the
        key here; the relay forwards sealed bytes untouched."""
        testbed = Testbed(seed=606)
        a, b, c = _chain(testbed, [0.0, 25.0, 50.0], key=b"group")
        received = []
        c.request_context(lambda source, ctx: received.append(ctx))
        # Sealed overhead (6B) + relay header (9B) still fits BLE for tiny
        # payloads: 9 + 1 + 8 + (3 + 6) = 27.
        a.add_context({"interval_s": 0.5}, b"psst", None)
        testbed.kernel.run_until(8.0)
        assert b"psst" in received

"""Context confidentiality (paper Sec 3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.manager import OmniConfig
from repro.core.security import (
    OVERHEAD_BYTES,
    NullCipher,
    SymmetricContextCipher,
)
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.phy.geometry import Position
from repro.util.rng import SeededRng


class TestNullCipher:
    def test_identity(self):
        cipher = NullCipher()
        assert cipher.seal(b"x") == b"x"
        assert cipher.open(b"x") == b"x"
        assert cipher.overhead == 0


class TestSymmetricCipher:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            SymmetricContextCipher(b"")

    @given(st.binary(max_size=200))
    def test_property_roundtrip(self, payload):
        cipher = SymmetricContextCipher(b"tour-group-7", SeededRng(1))
        blob = cipher.seal(payload)
        assert len(blob) == len(payload) + OVERHEAD_BYTES
        assert SymmetricContextCipher(b"tour-group-7").open(blob) == payload

    def test_ciphertext_hides_plaintext(self):
        cipher = SymmetricContextCipher(b"key", SeededRng(2))
        blob = cipher.seal(b"secret-payload")
        assert b"secret-payload" not in blob

    def test_nonces_vary_per_seal(self):
        cipher = SymmetricContextCipher(b"key", SeededRng(3))
        assert cipher.seal(b"same") != cipher.seal(b"same")

    def test_wrong_key_rejected(self):
        blob = SymmetricContextCipher(b"right", SeededRng(4)).seal(b"payload")
        assert SymmetricContextCipher(b"wrong").open(blob) is None

    def test_tampering_rejected(self):
        cipher = SymmetricContextCipher(b"key", SeededRng(5))
        blob = bytearray(cipher.seal(b"payload"))
        blob[OVERHEAD_BYTES - 1] ^= 0xFF  # flip a ciphertext byte
        assert cipher.open(bytes(blob)) is None

    def test_short_blob_rejected(self):
        assert SymmetricContextCipher(b"key").open(b"abc") is None


class TestEncryptedContextEndToEnd:
    def _stack(self, testbed, name, x, key):
        config = OmniConfig(
            context_cipher=SymmetricContextCipher(
                key, testbed.kernel.rng.child("cipher", name)
            )
            if key
            else None
        )
        device = testbed.add_device(name, position=Position(x, 0))
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI, config)
        manager.enable()
        return manager

    def test_shared_key_peers_exchange_context(self):
        testbed = Testbed(seed=11)
        a = self._stack(testbed, "a", 0.0, b"group-key")
        b = self._stack(testbed, "b", 10.0, b"group-key")
        received = []
        b.request_context(lambda source, ctx: received.append(ctx))
        a.add_context({"interval_s": 0.5}, b"secret", None)
        testbed.kernel.run_until(3.0)
        assert b"secret" in received

    def test_foreign_key_context_dropped_but_discovery_works(self):
        testbed = Testbed(seed=12)
        a = self._stack(testbed, "a", 0.0, b"group-key")
        eavesdropper = self._stack(testbed, "eve", 10.0, b"other-key")
        received = []
        eavesdropper.request_context(lambda source, ctx: received.append(ctx))
        a.add_context({"interval_s": 0.5}, b"secret", None)
        testbed.kernel.run_until(5.0)
        assert received == []  # content protected
        # Address beacons stay plain: presence is still mutually visible.
        assert a.omni_address in eavesdropper.neighbors()

    def test_plaintext_peer_cannot_read_sealed_context(self):
        testbed = Testbed(seed=13)
        a = self._stack(testbed, "a", 0.0, b"group-key")
        plain = self._stack(testbed, "plain", 10.0, None)
        received = []
        plain.request_context(lambda source, ctx: received.append(ctx))
        a.add_context({"interval_s": 0.5}, b"secret", None)
        testbed.kernel.run_until(3.0)
        assert b"secret" not in received  # sealed blobs only

    def test_cipher_overhead_counted_against_ble_budget(self):
        # 13 B payload + 6 B overhead + 9 B header = 28 > 27: must leave BLE.
        # Delivery needs a secondary-listen window to overlap an announcement,
        # which is phase-dependent; this seed lines one up well before the
        # horizon.
        testbed = Testbed(seed=17)
        a = self._stack(testbed, "a", 0.0, b"group-key")
        b = self._stack(testbed, "b", 10.0, b"group-key")
        received = []
        b.request_context(lambda source, ctx: received.append(ctx))
        a.add_context({"interval_s": 0.5}, bytes(13), None)
        testbed.kernel.run_until(6.0)
        assert bytes(13) in received  # delivered via multicast fallback
        assert a.device.radio("wifi").multicasts_sent > 0

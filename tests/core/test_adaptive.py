"""Adaptive address-beacon pacing (future-work extension)."""

import pytest

from repro.core.adaptive import AdaptiveBeaconConfig, AdaptiveBeaconController
from repro.core.manager import OmniConfig
from repro.experiments.scenario import OMNI_TECHS_BLE_ONLY, Testbed
from repro.phy.geometry import Position
from repro.phy.mobility import WaypointPath


class TestConfigValidation:
    def test_defaults_valid(self):
        AdaptiveBeaconConfig()

    @pytest.mark.parametrize("kwargs", [
        {"min_interval_s": 0},
        {"min_interval_s": 2.0, "max_interval_s": 1.0},
        {"speedup_factor": 1.0},
        {"speedup_factor": 0.0},
        {"backoff_factor": 1.0},
        {"evaluate_period_s": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveBeaconConfig(**kwargs)


class TestController:
    def test_initial_interval_clamped(self):
        config = AdaptiveBeaconConfig(min_interval_s=0.2, max_interval_s=1.0)
        assert AdaptiveBeaconController(config, 5.0).interval_s == 1.0
        assert AdaptiveBeaconController(config, 0.01).interval_s == 0.2

    def test_stability_backs_off_to_ceiling(self):
        controller = AdaptiveBeaconController(AdaptiveBeaconConfig(), 0.5)
        neighborhood = frozenset({1, 2})
        controller.evaluate(neighborhood)
        for _ in range(20):
            interval = controller.evaluate(neighborhood)
        assert interval == AdaptiveBeaconConfig().max_interval_s

    def test_churn_speeds_up_to_floor(self):
        controller = AdaptiveBeaconController(AdaptiveBeaconConfig(), 2.0)
        for round_index in range(20):
            interval = controller.evaluate(frozenset({round_index}))
        assert interval == AdaptiveBeaconConfig().min_interval_s
        assert controller.churn_events >= 19

    def test_departures_count_as_churn(self):
        controller = AdaptiveBeaconController(AdaptiveBeaconConfig(), 1.0)
        controller.evaluate(frozenset({1, 2}))
        stable = controller.evaluate(frozenset({1, 2}))
        after_loss = controller.evaluate(frozenset({1}))
        assert after_loss < stable


class TestManagerIntegration:
    def test_beacon_rate_adapts_to_quiet_neighborhood(self):
        testbed = Testbed(seed=21)
        adaptive = AdaptiveBeaconConfig(min_interval_s=0.1, max_interval_s=2.0,
                                        evaluate_period_s=1.0)
        config = OmniConfig(beacon_interval_s=0.5, adaptive_beacon=adaptive)
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(10, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_ONLY, config)
        omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_ONLY, config)
        omni_a.enable()
        omni_b.enable()
        # Long stable period: both back off toward the 2 s ceiling.
        testbed.kernel.run_until(30.0)
        ble = device_a.radio("ble")
        before = ble.adv_events_sent
        testbed.kernel.run_until(40.0)
        rate_stable = (ble.adv_events_sent - before) / 10.0
        assert rate_stable < 1.0  # well below the fixed 2 Hz

    def test_newcomer_speeds_beaconing_up(self):
        testbed = Testbed(seed=22)
        adaptive = AdaptiveBeaconConfig(min_interval_s=0.1, max_interval_s=2.0,
                                        evaluate_period_s=1.0,
                                        speedup_factor=0.25,
                                        backoff_factor=1.2)
        config = OmniConfig(beacon_interval_s=0.5, adaptive_beacon=adaptive)
        device_a = testbed.add_device("a", position=Position(0, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_ONLY, config)
        omni_a.enable()
        testbed.kernel.run_until(20.0)  # alone and stable: at the ceiling
        ble = device_a.radio("ble")
        before = ble.adv_events_sent
        testbed.kernel.run_until(25.0)
        slow_rate = (ble.adv_events_sent - before) / 5.0

        # A newcomer strolls in; the churn must accelerate the beacon in the
        # window right after the discovery.
        path = WaypointPath([(25.0, Position(200, 0)), (28.0, Position(5, 0))])
        newcomer_device = testbed.add_device("new", mobility=path)
        omni_new = testbed.omni_manager(newcomer_device, OMNI_TECHS_BLE_ONLY, config)
        omni_new.enable()
        testbed.kernel.run_until(30.5)
        before = ble.adv_events_sent
        testbed.kernel.run_until(34.5)
        fast_rate = (ble.adv_events_sent - before) / 4.0
        assert fast_rate > slow_rate * 1.5

    def test_discovery_still_works_under_adaptation(self):
        testbed = Testbed(seed=23)
        config = OmniConfig(adaptive_beacon=AdaptiveBeaconConfig())
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(10, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_ONLY, config)
        omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_ONLY, config)
        omni_a.enable()
        omni_b.enable()
        testbed.kernel.run_until(5.0)
        assert omni_b.omni_address in omni_a.neighbors()

"""The address beacon service and secondary-technology engagement."""

import pytest

from repro.core.manager import OmniConfig
from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    Testbed,
)
from repro.phy.geometry import Position


@pytest.fixture
def testbed():
    return Testbed(seed=77)


def _stack(testbed, name, position, techs, config=None):
    radio_kinds = {"wifi"}
    if TechType.BLE_BEACON in techs:
        radio_kinds.add("ble")
    device = testbed.add_device(name, position=position, radio_kinds=radio_kinds)
    manager = testbed.omni_manager(device, techs, config)
    manager.enable()
    return manager


def test_primary_tech_is_cheapest_available(testbed):
    manager = _stack(testbed, "a", Position(0, 0), OMNI_TECHS_BLE_WIFI)
    assert manager.beacon_service.primary_tech is TechType.BLE_BEACON


def test_primary_is_multicast_when_no_ble(testbed):
    manager = _stack(testbed, "a", Position(0, 0),
                     {TechType.WIFI_MULTICAST, TechType.WIFI_TCP})
    assert manager.beacon_service.primary_tech is TechType.WIFI_MULTICAST


def test_beacon_interval_matches_config(testbed):
    config = OmniConfig(beacon_interval_s=0.5)
    manager = _stack(testbed, "a", Position(0, 0), OMNI_TECHS_BLE_ONLY, config)
    ble = manager.device.radio("ble")
    testbed.kernel.run_until(10.0)
    # ~20 beacons in 10 s at 500 ms (plus timer jitter).
    assert 18 <= ble.adv_events_sent <= 22


def test_secondary_probe_windows_fire(testbed):
    config = OmniConfig(secondary_listen_period_s=5.0,
                        secondary_listen_window_s=0.05)
    manager = _stack(testbed, "a", Position(0, 0), OMNI_TECHS_BLE_WIFI, config)
    wifi = manager.device.radio("wifi")
    monitor_seen = []
    original = wifi.open_monitor_window

    def spy(duration, handler):
        monitor_seen.append((testbed.kernel.now, duration))
        original(duration, handler)

    wifi.open_monitor_window = spy
    testbed.kernel.run_until(16.0)
    assert [round(t) for t, _ in monitor_seen] == [5, 10, 15]
    assert all(duration == 0.05 for _, duration in monitor_seen)


def test_engages_multicast_for_multicast_only_peer(testbed):
    config = OmniConfig(secondary_listen_period_s=1.0,
                        secondary_listen_window_s=0.6)
    full = _stack(testbed, "full", Position(0, 0), OMNI_TECHS_BLE_WIFI, config)
    wifi_only = _stack(testbed, "wifi-only", Position(10, 0),
                       {TechType.WIFI_MULTICAST, TechType.WIFI_TCP}, config)
    assert not full.beacon_service.is_engaged(TechType.WIFI_MULTICAST)
    testbed.kernel.run_until(30.0)
    # The wide probe window catches the peer's 500 ms multicast beacons.
    assert full.beacon_service.is_engaged(TechType.WIFI_MULTICAST)
    # And the wifi-only peer learned the full stack exists (mutual).
    assert full.omni_address in wifi_only.neighbors()
    assert wifi_only.omni_address in full.neighbors()


def test_disengages_when_peer_leaves(testbed):
    config = OmniConfig(secondary_listen_period_s=1.0,
                        secondary_listen_window_s=0.6,
                        peer_staleness_s=5.0)
    full = _stack(testbed, "full", Position(0, 0), OMNI_TECHS_BLE_WIFI, config)
    wifi_only = _stack(testbed, "wifi-only", Position(10, 0),
                       {TechType.WIFI_MULTICAST, TechType.WIFI_TCP}, config)
    testbed.kernel.run_until(30.0)
    assert full.beacon_service.is_engaged(TechType.WIFI_MULTICAST)
    wifi_only.disable()
    testbed.kernel.run_until(60.0)
    assert not full.beacon_service.is_engaged(TechType.WIFI_MULTICAST)


def test_no_engagement_when_peer_reachable_on_ble(testbed):
    config = OmniConfig(secondary_listen_period_s=1.0,
                        secondary_listen_window_s=0.6)
    a = _stack(testbed, "a", Position(0, 0), OMNI_TECHS_BLE_WIFI, config)
    b = _stack(testbed, "b", Position(10, 0), OMNI_TECHS_BLE_WIFI, config)
    testbed.kernel.run_until(30.0)
    # Both sides hear each other on BLE; multicast stays dark.
    assert not a.beacon_service.is_engaged(TechType.WIFI_MULTICAST)
    assert not b.beacon_service.is_engaged(TechType.WIFI_MULTICAST)


def test_context_follows_engagement(testbed):
    """An engaged secondary carries app contexts too (paper Sec 3.3)."""
    config = OmniConfig(secondary_listen_period_s=1.0,
                        secondary_listen_window_s=0.6)
    full = _stack(testbed, "full", Position(0, 0), OMNI_TECHS_BLE_WIFI, config)
    wifi_only = _stack(testbed, "wifi-only", Position(10, 0),
                       {TechType.WIFI_MULTICAST, TechType.WIFI_TCP}, config)
    received = []
    wifi_only.request_context(lambda source, ctx: received.append(ctx))
    full.add_context({"interval_s": 0.5}, b"svc", None)
    testbed.kernel.run_until(40.0)
    assert b"svc" in received

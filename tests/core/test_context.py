"""Context parameters and registry."""

import pytest

from repro.core.context import ContextParams, ContextRegistration, ContextRegistry


class TestParams:
    def test_defaults(self):
        assert ContextParams().interval_s == 1.0

    def test_from_params_passthrough(self):
        params = ContextParams(interval_s=0.5)
        assert ContextParams.from_params(params) is params

    def test_from_none(self):
        assert ContextParams.from_params(None).interval_s == 1.0

    def test_from_dict_interval(self):
        assert ContextParams.from_params({"interval_s": 0.25}).interval_s == 0.25

    def test_from_dict_frequency(self):
        assert ContextParams.from_params({"frequency_hz": 2.0}).interval_s == 0.5

    def test_from_empty_dict(self):
        assert ContextParams.from_params({}).interval_s == 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ContextParams(interval_s=0)
        with pytest.raises(ValueError):
            ContextParams.from_params({"frequency_hz": 0})

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            ContextParams.from_params("fast")


def _registration(context_id="ctx-1", is_system=False):
    return ContextRegistration(
        context_id=context_id,
        params=ContextParams(),
        payload=b"payload",
        status_callback=None,
        is_system=is_system,
    )


class TestRegistry:
    def test_add_get_remove(self):
        registry = ContextRegistry()
        registration = _registration()
        registry.add(registration)
        assert registry.get("ctx-1") is registration
        assert "ctx-1" in registry
        assert registry.remove("ctx-1") is registration
        assert registry.get("ctx-1") is None

    def test_duplicate_id_rejected(self):
        registry = ContextRegistry()
        registry.add(_registration())
        with pytest.raises(ValueError):
            registry.add(_registration())

    def test_remove_missing_returns_none(self):
        assert ContextRegistry().remove("nope") is None

    def test_all_filters_system(self):
        registry = ContextRegistry()
        registry.add(_registration("app"))
        registry.add(_registration("beacon", is_system=True))
        assert len(registry.all()) == 2
        visible = registry.all(include_system=False)
        assert [registration.context_id for registration in visible] == ["app"]

    def test_len(self):
        registry = ContextRegistry()
        assert len(registry) == 0
        registry.add(_registration())
        assert len(registry) == 1

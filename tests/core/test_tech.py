"""Technology traits and the adapter base contract."""

import pytest

from repro.core.codes import StatusCode
from repro.core.messages import Operation, SendRequest, TechStatusChange
from repro.core.tech import (
    TRAITS,
    TechQueues,
    TechType,
    TechnologyAdapter,
)
from repro.sim.queues import SimQueue


class TestTraits:
    def test_every_tech_has_traits(self):
        assert set(TRAITS) == set(TechType)

    def test_ble_is_cheapest_context_tech(self):
        context_ranks = {
            tech: traits.energy_rank
            for tech, traits in TRAITS.items()
            if traits.supports_context
        }
        assert min(context_ranks, key=context_ranks.get) is TechType.BLE_BEACON

    def test_wifi_tcp_is_data_only(self):
        traits = TRAITS[TechType.WIFI_TCP]
        assert traits.supports_data and not traits.supports_context

    def test_ble_cannot_carry_bulk(self):
        assert TRAITS[TechType.BLE_BEACON].max_data_bytes < 25_000_000

    def test_wifi_carries_bulk(self):
        assert TRAITS[TechType.WIFI_TCP].max_data_bytes is None


class RecordingAdapter(TechnologyAdapter):
    """Minimal adapter for contract tests."""

    tech_type = TechType.BLE_BEACON

    def __init__(self, kernel):
        super().__init__(kernel)
        self.handled = []

    def low_level_address(self):
        return "addr-1"

    def _handle_request(self, request):
        self.handled.append(request)
        self._respond(request, request.success_code, request.context_id)


def _queues():
    return TechQueues(SimQueue("send"), SimQueue("recv"), SimQueue("resp"))


def _request(operation=Operation.ADD_CONTEXT):
    return SendRequest(
        operation=operation,
        request_id="req-1",
        packed=None,
        context_id="ctx-1",
    )


class TestAdapterContract:
    def test_enable_returns_type_and_address(self, kernel):
        adapter = RecordingAdapter(kernel)
        assert adapter.enable(_queues()) == (TechType.BLE_BEACON, "addr-1")
        assert adapter.enabled

    def test_double_enable_rejected(self, kernel):
        adapter = RecordingAdapter(kernel)
        adapter.enable(_queues())
        with pytest.raises(RuntimeError):
            adapter.enable(_queues())

    def test_send_queue_items_are_dispatched(self, kernel):
        adapter = RecordingAdapter(kernel)
        queues = _queues()
        adapter.enable(queues)
        request = _request()
        queues.send_queue.put(request)
        kernel.run_until(0.1)
        assert adapter.handled == [request]
        response = queues.response_queue.get_nowait()
        assert response.code is StatusCode.ADD_CONTEXT_SUCCESS
        assert response.request is request

    def test_disable_drains_pending_with_failures(self, kernel):
        adapter = RecordingAdapter(kernel)
        queues = _queues()
        adapter.enable(queues)
        # Queue two requests and disable before the pump process ever runs
        # (its first step is deferred to the next kernel instant).
        queues.send_queue.put(_request())
        queues.send_queue.put(_request(Operation.SEND_DATA))
        adapter.disable()
        drained = queues.response_queue.drain()
        failure_codes = [item.code for item in drained
                         if not isinstance(item, TechStatusChange)]
        assert StatusCode.ADD_CONTEXT_FAILURE in failure_codes
        assert StatusCode.SEND_DATA_FAILURE in failure_codes
        status_changes = [item for item in drained
                          if isinstance(item, TechStatusChange)]
        assert len(status_changes) == 1
        assert not status_changes[0].available

    def test_disable_is_idempotent(self, kernel):
        adapter = RecordingAdapter(kernel)
        adapter.enable(_queues())
        kernel.run_until(0.1)
        adapter.disable()
        adapter.disable()
        assert not adapter.enabled

    def test_context_hooks_raise_for_data_only_default(self, kernel):
        class DataOnly(TechnologyAdapter):
            tech_type = TechType.WIFI_TCP

            def low_level_address(self):
                return "x"

        adapter = DataOnly(kernel)
        with pytest.raises(NotImplementedError):
            adapter.start_listening()
        with pytest.raises(NotImplementedError):
            adapter.listen_window(0.1)

    def test_default_estimate_is_none(self, kernel):
        adapter = RecordingAdapter(kernel)
        assert adapter.estimate_data_seconds(100, fast_hint=True) is None


class TestSendRequestCodes:
    @pytest.mark.parametrize("operation,failure,success", [
        (Operation.ADD_CONTEXT, StatusCode.ADD_CONTEXT_FAILURE,
         StatusCode.ADD_CONTEXT_SUCCESS),
        (Operation.UPDATE_CONTEXT, StatusCode.UPDATE_CONTEXT_FAILURE,
         StatusCode.UPDATE_CONTEXT_SUCCESS),
        (Operation.REMOVE_CONTEXT, StatusCode.REMOVE_CONTEXT_FAILURE,
         StatusCode.REMOVE_CONTEXT_SUCCESS),
        (Operation.SEND_DATA, StatusCode.SEND_DATA_FAILURE,
         StatusCode.SEND_DATA_SUCCESS),
    ])
    def test_code_mapping(self, operation, failure, success):
        request = _request(operation)
        assert request.failure_code is failure
        assert request.success_code is success

    def test_failure_subject_is_destination_for_data(self):
        request = _request(Operation.SEND_DATA)
        request.destination_omni = "omni-x"
        assert request.failure_subject == "omni-x"

    def test_failure_subject_is_context_id_for_context_ops(self):
        assert _request().failure_subject == "ctx-1"


class TestAvailability:
    def test_base_availability_follows_enabled(self, kernel):
        adapter = RecordingAdapter(kernel)
        assert not adapter.available
        adapter.enable(_queues())
        assert adapter.available

    def test_radio_backed_availability(self, kernel, make_device):
        from repro.comm.ble_tech import BleBeaconTech

        device = make_device("a", radios=("ble",))
        adapter = BleBeaconTech(kernel, device.radio("ble"))
        adapter.enable(_queues())
        assert adapter.available
        device.radio("ble").disable()
        assert not adapter.available
        device.radio("ble").enable()
        assert adapter.available

    def test_radio_power_change_emits_status_change(self, kernel, make_device):
        from repro.comm.ble_tech import BleBeaconTech

        device = make_device("a", radios=("ble",))
        adapter = BleBeaconTech(kernel, device.radio("ble"))
        queues = _queues()
        adapter.enable(queues)
        device.radio("ble").disable()
        changes = [item for item in queues.response_queue.drain()
                   if isinstance(item, TechStatusChange)]
        assert changes and not changes[0].available
        device.radio("ble").enable()
        changes = [item for item in queues.response_queue.drain()
                   if isinstance(item, TechStatusChange)]
        assert changes and changes[0].available

"""Data technology selection."""

import pytest

from repro.core.address import OmniAddress
from repro.core.peers import PeerTable
from repro.core.selection import DataTechSelector
from repro.core.tech import TechType, TechnologyAdapter
from repro.net.addresses import MacAddress, MeshAddress

PEER = OmniAddress(0xCAFE)


class FakeAdapter(TechnologyAdapter):
    """Adapter stub with a fixed estimate."""

    def __init__(self, kernel, tech_type, estimate, max_bytes=None):
        self.tech_type = tech_type
        super().__init__(kernel)
        self.enabled = True
        self._estimate = estimate
        self._max_bytes = max_bytes

    def low_level_address(self):
        return "fake"

    def estimate_data_seconds(self, size, fast_hint, destination=None):
        if self._max_bytes is not None and size > self._max_bytes:
            return None
        if callable(self._estimate):
            return self._estimate(size, fast_hint)
        return self._estimate


@pytest.fixture
def table(kernel):
    table = PeerTable(kernel)
    table.observe(PEER, TechType.BLE_BEACON, MacAddress(1), fast_peer=True)
    table.observe(PEER, TechType.WIFI_TCP, MeshAddress(2), fast_peer=True)
    return table


def test_plans_sorted_by_expected_time(kernel, table):
    adapters = {
        TechType.BLE_BEACON: FakeAdapter(kernel, TechType.BLE_BEACON, 0.04),
        TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 0.012),
    }
    plans = DataTechSelector(table).plans(adapters, PEER, 39)
    assert [plan.tech_type for plan in plans] == [
        TechType.WIFI_TCP, TechType.BLE_BEACON
    ]
    assert plans[0].low_level_address == MeshAddress(2)
    assert plans[0].fast_hint


def test_techs_without_peer_entry_excluded(kernel, table):
    adapters = {
        TechType.WIFI_MULTICAST: FakeAdapter(kernel, TechType.WIFI_MULTICAST, 0.001),
        TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 1.0),
    }
    # No WIFI_MULTICAST entry exists for PEER... but observe() of a beacon
    # records both WiFi techs; here the table fixture only has TCP.
    plans = DataTechSelector(table).plans(adapters, PEER, 100)
    assert [plan.tech_type for plan in plans] == [TechType.WIFI_TCP]


def test_unknown_destination_yields_no_plans(kernel, table):
    adapters = {TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 1.0)}
    plans = DataTechSelector(table).plans(adapters, OmniAddress(0xDEAD), 100)
    assert plans == []


def test_size_limit_excludes_tech(kernel, table):
    adapters = {
        TechType.BLE_BEACON: FakeAdapter(kernel, TechType.BLE_BEACON, 0.001,
                                         max_bytes=6885),
        TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 3.0),
    }
    plans = DataTechSelector(table).plans(adapters, PEER, 25_000_000)
    assert [plan.tech_type for plan in plans] == [TechType.WIFI_TCP]


def test_adapter_estimate_none_excluded(kernel, table):
    adapters = {
        TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP,
                                       lambda size, fast: None),
    }
    assert DataTechSelector(table).plans(adapters, PEER, 10) == []


def test_disabled_adapter_excluded(kernel, table):
    adapter = FakeAdapter(kernel, TechType.WIFI_TCP, 0.01)
    adapter.enabled = False
    assert DataTechSelector(table).plans(
        {TechType.WIFI_TCP: adapter}, PEER, 10
    ) == []


def test_exclude_set_for_failover(kernel, table):
    adapters = {
        TechType.BLE_BEACON: FakeAdapter(kernel, TechType.BLE_BEACON, 0.04),
        TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 0.012),
    }
    selector = DataTechSelector(table)
    plans = selector.plans(adapters, PEER, 39, exclude={TechType.WIFI_TCP})
    assert [plan.tech_type for plan in plans] == [TechType.BLE_BEACON]


def test_context_only_adapters_never_selected(kernel, table):
    class ContextOnly(FakeAdapter):
        pass

    adapter = ContextOnly(kernel, TechType.BLE_BEACON, 0.01)
    # Force traits lookup to a data-capable tech but simulate the check by
    # using NFC with supports_data True... instead verify the real rule:
    # WIFI_TCP traits say data-capable, BLE too; use a non-data tech is not
    # available in TRAITS, so assert the selector consults supports_data by
    # excluding nothing here (sanity).
    plans = DataTechSelector(table).plans({TechType.BLE_BEACON: adapter}, PEER, 5)
    assert plans  # BLE supports data


class TestPolicies:
    def _adapters(self, kernel):
        return {
            TechType.BLE_BEACON: FakeAdapter(kernel, TechType.BLE_BEACON, 0.005),
            TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 0.012),
        }

    def test_expected_time_picks_fastest(self, kernel, table):
        selector = DataTechSelector(table, policy="expected_time")
        plans = selector.plans(self._adapters(kernel), PEER, 10)
        assert plans[0].tech_type is TechType.BLE_BEACON

    def test_always_wifi_prefers_wifi_even_if_slower(self, kernel, table):
        selector = DataTechSelector(table, policy="always_wifi")
        plans = selector.plans(self._adapters(kernel), PEER, 10)
        assert plans[0].tech_type is TechType.WIFI_TCP

    def test_lowest_energy_prefers_cheap_radio(self, kernel, table):
        adapters = {
            TechType.BLE_BEACON: FakeAdapter(kernel, TechType.BLE_BEACON, 5.0),
            TechType.WIFI_TCP: FakeAdapter(kernel, TechType.WIFI_TCP, 0.01),
        }
        selector = DataTechSelector(table, policy="lowest_energy")
        plans = selector.plans(adapters, PEER, 10)
        assert plans[0].tech_type is TechType.BLE_BEACON

    def test_unknown_policy_rejected(self, kernel, table):
        with pytest.raises(ValueError):
            DataTechSelector(table, policy="mystery")

"""OmniManager: the Developer API end to end over real adapters."""

import pytest

from repro.core.codes import StatusCode
from repro.core.manager import OmniConfig
from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    Testbed,
)
from repro.net.payload import VirtualPayload
from repro.phy.geometry import Position


@pytest.fixture
def testbed():
    return Testbed(seed=99)


@pytest.fixture
def pair(testbed):
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI)
    omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI)
    omni_a.enable()
    omni_b.enable()
    return omni_a, omni_b


class TestLifecycle:
    def test_enable_requires_adapters(self, testbed):
        device = testbed.add_device("solo", position=Position(0, 0))
        from repro.core.manager import OmniManager

        manager = OmniManager(device)
        with pytest.raises(RuntimeError, match="no technology adapters"):
            manager.enable()

    def test_double_enable_rejected(self, testbed, pair):
        omni_a, _ = pair
        with pytest.raises(RuntimeError):
            omni_a.enable()

    def test_api_requires_enabled(self, testbed):
        device = testbed.add_device("solo", position=Position(0, 0))
        manager = testbed.omni_manager(device)
        with pytest.raises(RuntimeError):
            manager.add_context({}, b"x", None)

    def test_duplicate_adapter_rejected(self, testbed):
        device = testbed.add_device("solo", position=Position(0, 0))
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_ONLY)
        from repro.comm.ble_tech import BleBeaconTech

        with pytest.raises(ValueError):
            manager.register_adapter(BleBeaconTech(testbed.kernel,
                                                   device.radio("ble")))

    def test_disable_stops_beaconing(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(2.0)
        omni_a.disable()
        before = omni_b.peer_table.record(omni_a.omni_address)
        assert before is not None
        testbed.kernel.run_until(20.0)
        # A's beacons stopped, so B expires the peer.
        assert omni_b.peer_table.record(omni_a.omni_address) is None


class TestNeighborDiscovery:
    def test_mutual_discovery_within_beacon_interval(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(1.0)
        assert omni_b.omni_address in omni_a.neighbors()
        assert omni_a.omni_address in omni_b.neighbors()

    def test_beacon_learns_both_wifi_and_ble_addresses(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(1.0)
        for tech in (TechType.BLE_BEACON, TechType.WIFI_TCP,
                     TechType.WIFI_MULTICAST):
            entry = omni_a.peer_table.entry(omni_b.omni_address, tech)
            assert entry is not None, tech
            assert entry.fast_peer  # learned via connection-less beacon

    def test_address_beacons_hidden_from_application(self, testbed, pair):
        omni_a, omni_b = pair
        contexts = []
        omni_a.request_context(lambda source, ctx: contexts.append(ctx))
        testbed.kernel.run_until(3.0)
        assert contexts == []  # beacons flow, but no app context was added

    def test_out_of_range_peer_not_discovered(self, testbed):
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(500, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI)
        omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI)
        omni_a.enable()
        omni_b.enable()
        testbed.kernel.run_until(10.0)
        assert omni_a.neighbors() == []


class TestContextApi:
    def test_add_context_returns_id_via_callback(self, testbed, pair):
        omni_a, _ = pair
        events = []
        omni_a.add_context({"interval_s": 0.5}, b"svc",
                           lambda code, info: events.append((code, info)))
        testbed.kernel.run_until(0.5)
        assert events[0][0] is StatusCode.ADD_CONTEXT_SUCCESS
        assert isinstance(events[0][1], str)

    def test_context_delivered_periodically_with_source(self, testbed, pair):
        omni_a, omni_b = pair
        received = []
        omni_b.request_context(
            lambda source, ctx: received.append((testbed.kernel.now, source, ctx))
        )
        omni_a.add_context({"interval_s": 0.5}, b"tour-audio", None)
        testbed.kernel.run_until(3.0)
        assert len(received) >= 4
        assert all(source == omni_a.omni_address for _, source, _ in received)
        assert all(ctx == b"tour-audio" for _, _, ctx in received)

    def test_update_context_changes_payload(self, testbed, pair):
        omni_a, omni_b = pair
        received = []
        omni_b.request_context(lambda source, ctx: received.append(ctx))
        ids = []
        omni_a.add_context({"interval_s": 0.5}, b"old",
                           lambda code, info: ids.append(info))
        testbed.kernel.run_until(1.0)
        events = []
        omni_a.update_context(ids[0], None, b"new",
                              lambda code, info: events.append(code))
        testbed.kernel.run_until(2.5)
        assert StatusCode.UPDATE_CONTEXT_SUCCESS in events
        assert received[-1] == b"new"
        assert b"old" in received

    def test_update_unknown_context_fails(self, testbed, pair):
        omni_a, _ = pair
        events = []
        omni_a.update_context("ctx-nope", None, b"x",
                              lambda code, info: events.append((code, info)))
        testbed.kernel.run_until(0.1)
        assert events[0][0] is StatusCode.UPDATE_CONTEXT_FAILURE
        assert events[0][1][1] == "ctx-nope"

    def test_remove_context_stops_sharing(self, testbed, pair):
        omni_a, omni_b = pair
        received = []
        omni_b.request_context(lambda source, ctx: received.append(ctx))
        ids = []
        omni_a.add_context({"interval_s": 0.5}, b"gone",
                           lambda code, info: ids.append(info))
        testbed.kernel.run_until(1.0)
        events = []
        omni_a.remove_context(ids[0], lambda code, info: events.append(code))
        testbed.kernel.run_until(1.5)
        count = len(received)
        testbed.kernel.run_until(5.0)
        assert len(received) == count
        assert StatusCode.REMOVE_CONTEXT_SUCCESS in events

    def test_remove_unknown_context_fails(self, testbed, pair):
        omni_a, _ = pair
        events = []
        omni_a.remove_context("ctx-nope", lambda code, info: events.append(code))
        testbed.kernel.run_until(0.1)
        assert events == [StatusCode.REMOVE_CONTEXT_FAILURE]

    def test_oversized_ble_context_falls_to_multicast(self, testbed, pair):
        omni_a, omni_b = pair
        received = []
        omni_b.request_context(lambda source, ctx: received.append(ctx))
        big = bytes(range(100))  # > 18 B: cannot ride a BLE advertisement
        events = []
        omni_a.add_context({"interval_s": 0.5}, big,
                           lambda code, info: events.append(code))
        testbed.kernel.run_until(6.0)
        assert StatusCode.ADD_CONTEXT_SUCCESS in events
        assert big in received  # delivered via WiFi multicast instead


class TestDataApi:
    def test_send_data_small_over_fast_peering(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(1.0)
        received = []
        omni_b.request_data(
            lambda source, data: received.append((testbed.kernel.now, source, data))
        )
        events = []
        start = testbed.kernel.now
        omni_a.send_data([omni_b.omni_address], b"reading",
                         lambda code, info: events.append((code, info)))
        testbed.kernel.run_until(start + 1.0)
        assert events == [(StatusCode.SEND_DATA_SUCCESS, omni_b.omni_address)]
        assert received[0][1] == omni_a.omni_address
        assert received[0][2] == b"reading"
        # Fast peering: ~12 ms, not seconds.
        assert received[0][0] - start < 0.05

    def test_send_bulk_data(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(1.0)
        received = []
        omni_b.request_data(lambda source, data: received.append(data))
        payload = VirtualPayload(25_000_000, tag="media")
        omni_a.send_data([omni_b.omni_address], payload, None)
        testbed.kernel.run_until(testbed.kernel.now + 5.0)
        assert received == [payload]

    def test_send_to_unknown_destination_fails(self, testbed, pair):
        omni_a, _ = pair
        from repro.core.address import OmniAddress

        events = []
        omni_a.send_data([OmniAddress(0x123456)], b"x",
                         lambda code, info: events.append((code, info)))
        testbed.kernel.run_until(0.5)
        assert events[0][0] is StatusCode.SEND_DATA_FAILURE
        assert "no technology" in events[0][1][0]

    def test_send_to_multiple_destinations_reports_each(self, testbed):
        positions = [Position(0, 0), Position(10, 0), Position(0, 10)]
        managers = []
        for index, position in enumerate(positions):
            device = testbed.add_device(f"d{index}", position=position)
            manager = testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI)
            manager.enable()
            managers.append(manager)
        testbed.kernel.run_until(1.0)
        events = []
        managers[0].send_data(
            [managers[1].omni_address, managers[2].omni_address],
            b"multi",
            lambda code, info: events.append((code, info)),
        )
        testbed.kernel.run_until(3.0)
        assert len(events) == 2
        assert {info for _, info in events} == {
            managers[1].omni_address, managers[2].omni_address
        }
        assert all(code is StatusCode.SEND_DATA_SUCCESS for code, _ in events)

    def test_reply_uses_inbound_peering(self, testbed, pair):
        omni_a, omni_b = pair
        testbed.kernel.run_until(1.0)
        replies = []
        omni_b.request_data(
            lambda source, data: omni_b.send_data([source], b"pong", None)
        )
        omni_a.request_data(
            lambda source, data: replies.append(testbed.kernel.now)
        )
        start = testbed.kernel.now
        omni_a.send_data([omni_b.omni_address], b"ping", None)
        testbed.kernel.run_until(start + 1.0)
        assert replies and replies[0] - start < 0.05


class TestBleOnlyConfiguration:
    def test_data_rides_ble_when_wifi_absent(self, testbed):
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(10, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_ONLY)
        omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_ONLY)
        omni_a.enable()
        omni_b.enable()
        testbed.kernel.run_until(1.0)
        received = []
        omni_b.request_data(
            lambda source, data: received.append((testbed.kernel.now, data))
        )
        start = testbed.kernel.now
        payload = b"x" * 30
        omni_a.send_data([omni_b.omni_address], payload, None)
        testbed.kernel.run_until(start + 1.0)
        assert received[0][1] == payload
        # Two-fragment burst: ~41 ms one way (the 82 ms round trip basis).
        assert received[0][0] - start == pytest.approx(0.041, abs=0.005)

    def test_bulk_data_fails_cleanly_without_wifi(self, testbed):
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(10, 0))
        omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_ONLY)
        omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_ONLY)
        omni_a.enable()
        omni_b.enable()
        testbed.kernel.run_until(1.0)
        events = []
        omni_a.send_data([omni_b.omni_address], VirtualPayload(25_000_000),
                         lambda code, info: events.append(code))
        testbed.kernel.run_until(testbed.kernel.now + 1.0)
        assert events == [StatusCode.SEND_DATA_FAILURE]

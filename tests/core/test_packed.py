"""The omni_packed_struct wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address import OmniAddress
from repro.core.packed import (
    ADDRESS_BEACON_PAYLOAD_BYTES,
    HEADER_BYTES,
    AddressBeacon,
    ContentKind,
    OmniPacked,
    PackedStructError,
)
from repro.net.addresses import MacAddress, MeshAddress
from repro.net.payload import VirtualPayload

SENDER = OmniAddress(0x1122334455667788)


class TestWireLayout:
    def test_header_is_nine_bytes(self):
        # 1 kind byte + 8 omni_address bytes (paper Sec 3.3).
        assert HEADER_BYTES == 9

    def test_first_byte_is_content_kind(self):
        raw = OmniPacked.context(SENDER, b"ctx").encode()
        assert raw[0] == ContentKind.CONTEXT.value

    def test_address_occupies_bytes_one_to_eight(self):
        raw = OmniPacked.data(SENDER, b"payload").encode()
        assert raw[1:9] == SENDER.to_bytes()

    def test_beacon_payload_is_fourteen_bytes(self):
        assert ADDRESS_BEACON_PAYLOAD_BYTES == 14
        beacon = AddressBeacon(MeshAddress(1), MacAddress(2))
        packed = OmniPacked.address_beacon(SENDER, beacon)
        assert packed.wire_size == HEADER_BYTES + 14

    def test_address_beacon_fits_a_ble_advertisement(self):
        beacon = AddressBeacon(MeshAddress(1), MacAddress(2))
        packed = OmniPacked.address_beacon(SENDER, beacon)
        # 23 bytes of struct + 4 bytes of fragment framing ≤ 31.
        assert packed.wire_size + 4 <= 31


class TestRoundtrip:
    @given(st.binary(max_size=500),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_property_context_roundtrip(self, payload, address_value):
        packed = OmniPacked.context(OmniAddress(address_value), payload)
        decoded = OmniPacked.decode(packed.encode())
        assert decoded == packed

    @given(st.binary(max_size=500))
    def test_property_data_roundtrip(self, payload):
        packed = OmniPacked.data(SENDER, payload)
        decoded = OmniPacked.decode(packed.encode())
        assert decoded.kind is ContentKind.DATA
        assert decoded.payload == payload

    @given(
        st.one_of(st.none(), st.integers(min_value=1, max_value=(1 << 64) - 1)),
        st.one_of(st.none(), st.integers(min_value=1, max_value=(1 << 48) - 1)),
    )
    def test_property_beacon_roundtrip(self, mesh_value, ble_value):
        beacon = AddressBeacon(
            mesh_address=MeshAddress(mesh_value) if mesh_value else None,
            ble_address=MacAddress(ble_value) if ble_value else None,
        )
        packed = OmniPacked.address_beacon(SENDER, beacon)
        decoded = OmniPacked.decode(packed.encode()).decode_beacon()
        assert decoded == beacon

    def test_wire_size_matches_encoding(self):
        packed = OmniPacked.context(SENDER, b"x" * 17)
        assert packed.wire_size == len(packed.encode())


class TestValidation:
    def test_decode_too_short(self):
        with pytest.raises(PackedStructError):
            OmniPacked.decode(b"\x01\x02")

    def test_decode_unknown_kind(self):
        raw = bytes([0x7F]) + SENDER.to_bytes()
        with pytest.raises(PackedStructError, match="unknown content kind"):
            OmniPacked.decode(raw)

    def test_decode_beacon_with_bad_payload_length(self):
        raw = bytes([ContentKind.ADDRESS_BEACON.value]) + SENDER.to_bytes() + b"short"
        with pytest.raises(PackedStructError):
            OmniPacked.decode(raw)

    def test_virtual_payload_cannot_byte_encode(self):
        packed = OmniPacked.data(SENDER, VirtualPayload(25_000_000, "media"))
        with pytest.raises(PackedStructError):
            packed.encode()

    def test_virtual_payload_wire_size(self):
        packed = OmniPacked.data(SENDER, VirtualPayload(25_000_000, "media"))
        assert packed.wire_size == HEADER_BYTES + 25_000_000

    def test_decode_beacon_on_non_beacon(self):
        packed = OmniPacked.context(SENDER, b"x")
        with pytest.raises(PackedStructError):
            packed.decode_beacon()

    def test_zero_addresses_decode_as_absent(self):
        beacon = AddressBeacon(None, None)
        decoded = AddressBeacon.decode(beacon.encode())
        assert decoded.mesh_address is None
        assert decoded.ble_address is None

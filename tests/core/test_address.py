"""The omni_address."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address import OmniAddress


def test_wire_width_is_eight_bytes():
    assert len(OmniAddress(0).to_bytes()) == 8


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_property_roundtrip(value):
    address = OmniAddress(value)
    assert OmniAddress.from_bytes(address.to_bytes()) == address


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        OmniAddress(1 << 64)
    with pytest.raises(ValueError):
        OmniAddress(-1)


def test_from_interface_addresses_deterministic():
    a = OmniAddress.from_interface_addresses([b"\x01" * 6, b"\x02" * 8])
    b = OmniAddress.from_interface_addresses([b"\x01" * 6, b"\x02" * 8])
    assert a == b


def test_order_independent():
    a = OmniAddress.from_interface_addresses([b"\x01" * 6, b"\x02" * 8])
    b = OmniAddress.from_interface_addresses([b"\x02" * 8, b"\x01" * 6])
    assert a == b


def test_different_interfaces_different_identity():
    a = OmniAddress.from_interface_addresses([b"\x01" * 6])
    b = OmniAddress.from_interface_addresses([b"\x02" * 6])
    assert a != b


def test_length_prefixing_prevents_concatenation_collisions():
    a = OmniAddress.from_interface_addresses([b"\x01\x02", b"\x03"])
    b = OmniAddress.from_interface_addresses([b"\x01", b"\x02\x03"])
    assert a != b


def test_empty_interface_list_rejected():
    with pytest.raises(ValueError):
        OmniAddress.from_interface_addresses([])


def test_str_format():
    assert str(OmniAddress(0xDEADBEEF)) == "omni:00000000deadbeef"


def test_devices_derive_distinct_addresses(make_device):
    from repro.core.manager import OmniManager

    a = OmniManager(make_device("a", x=0))
    b = OmniManager(make_device("b", x=1))
    assert a.omni_address != b.omni_address


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=5))
def test_property_always_valid_64_bit(addresses):
    derived = OmniAddress.from_interface_addresses(addresses)
    assert 0 <= derived.value < (1 << 64)

"""Status codes (paper Table 2)."""

from repro.core.codes import StatusCode, null_status_callback


def test_all_table2_codes_present():
    names = {code.name for code in StatusCode}
    assert names == {
        "ADD_CONTEXT_SUCCESS",
        "ADD_CONTEXT_FAILURE",
        "UPDATE_CONTEXT_SUCCESS",
        "UPDATE_CONTEXT_FAILURE",
        "REMOVE_CONTEXT_SUCCESS",
        "REMOVE_CONTEXT_FAILURE",
        "SEND_DATA_SUCCESS",
        "SEND_DATA_FAILURE",
    }


def test_success_failure_partition():
    for code in StatusCode:
        assert code.is_success != code.is_failure


def test_null_callback_accepts_anything():
    null_status_callback(StatusCode.SEND_DATA_SUCCESS, object())

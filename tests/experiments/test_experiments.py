"""Fast smoke coverage of the experiment drivers.

The full grids run in benchmarks/; here we exercise single cells and the
reporting so the drivers stay correct under plain ``pytest tests/``.
"""

import pytest

from repro.energy.constants import TABLE3_OPERATIONS
from repro.experiments.baseline_current import run_table3
from repro.experiments.controlled import run_cell
from repro.experiments.disseminate_exp import run_collaborative, run_direct
from repro.experiments.prophet_exp import run_variant
from repro.experiments.reporting import (
    render_fig7,
    render_table3,
    render_table4,
    render_table5,
)


class TestTable3Driver:
    def test_measures_all_operations_within_tolerance(self):
        results = run_table3()
        measured = {result.operation: result.peak_ma for result in results}
        for operation, expected in TABLE3_OPERATIONS.items():
            assert measured[operation] == pytest.approx(expected, rel=0.05)

    def test_render(self):
        text = render_table3(run_table3())
        assert "BLE-scan" in text and "162.4" in text


class TestControlledDriver:
    def test_ble_ble_omni_cell(self):
        cell = run_cell("Omni", "BLE", "BLE", 30)
        assert cell.latency_ms == pytest.approx(82, rel=0.05)
        assert 5 < cell.energy_avg_ma < 10

    def test_sp_ble_cell_energy_negative(self):
        cell = run_cell("SP", "BLE", "BLE", 30)
        assert cell.energy_avg_ma < -50

    def test_omni_fast_peering_cell(self):
        cell = run_cell("Omni", "BLE", "WiFi", 30)
        assert cell.latency_ms == pytest.approx(16, rel=0.4)

    def test_na_cells(self):
        assert run_cell("SP", "BLE", "WiFi", 30).latency_ms is None
        assert run_cell("SA", "WiFi", "BLE", 30).latency_ms is None

    def test_render(self):
        cells = [run_cell("Omni", "BLE", "BLE", 30),
                 run_cell("SP", "BLE", "WiFi", 30)]
        text = render_table4(cells)
        assert "N/A" in text and "Omni" in text


class TestDisseminateDriver:
    def test_direct_download_exact(self):
        result = run_direct(1000.0)
        assert result.time_to_complete_s == pytest.approx(30.0)
        assert result.energy_avg_ma is None
        assert result.charge_mas is None

    def test_omni_collaboration_at_1000(self):
        result = run_collaborative("Omni", 1000.0)
        assert result.time_to_complete_s < 20
        assert result.charge_mas > 0

    def test_measure_all_returns_per_device(self):
        results = run_collaborative("Omni", 1000.0, measure_all=True)
        assert len(results) == 3
        assert all(result.time_to_complete_s is not None for result in results)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_collaborative("magic", 1000.0)

    def test_render(self):
        text = render_table5([run_direct(100.0)])
        assert "direct" in text and "300" in text


class TestProphetDriver:
    def test_omni_variant_delivers_near_ferry_time(self):
        result = run_variant("Omni")
        assert result.delivery_latency_s is not None
        assert 5.0 < result.delivery_latency_s < 7.0

    def test_sp_variant_pays_discovery(self):
        result = run_variant("SP")
        assert result.delivery_latency_s is not None
        assert result.delivery_latency_s > 7.0

    def test_render(self):
        text = render_fig7([run_variant("Omni")])
        assert "Omni" in text

"""Testbed construction helpers."""

import pytest

from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    OMNI_TECHS_WIFI_ONLY,
    Testbed,
)
from repro.phy.geometry import Position


def test_default_device_has_ble_and_wifi():
    testbed = Testbed(seed=1)
    device = testbed.add_device("a", position=Position(0, 0))
    assert device.has_radio("ble") and device.has_radio("wifi")
    assert device.radio("ble").enabled


def test_radio_kinds_selectable():
    testbed = Testbed(seed=1)
    device = testbed.add_device("a", position=Position(0, 0),
                                radio_kinds={"wifi"})
    assert not device.has_radio("ble")


def test_omni_manager_respects_tech_set():
    testbed = Testbed(seed=1)
    device = testbed.add_device("a", position=Position(0, 0))
    manager = testbed.omni_manager(device, OMNI_TECHS_BLE_ONLY)
    assert set(manager.adapters) == {TechType.BLE_BEACON}


def test_tech_set_constants():
    assert OMNI_TECHS_BLE_ONLY == {TechType.BLE_BEACON}
    assert TechType.WIFI_TCP in OMNI_TECHS_BLE_WIFI
    assert TechType.BLE_BEACON not in OMNI_TECHS_WIFI_ONLY


def test_system_factories_build_distinct_systems():
    testbed = Testbed(seed=2)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(5, 0))
    device_c = testbed.add_device("c", position=Position(9, 0))
    sp = testbed.sp_ble(device_a)
    sa = testbed.sa(device_b)
    omni = testbed.omni(device_c)
    assert len({sp.local_id, sa.local_id, omni.local_id}) == 3


def test_same_seed_same_behaviour():
    def run(seed):
        testbed = Testbed(seed=seed)
        device_a = testbed.add_device("a", position=Position(0, 0))
        device_b = testbed.add_device("b", position=Position(5, 0))
        omni_a = testbed.omni_manager(device_a)
        omni_b = testbed.omni_manager(device_b)
        omni_a.enable()
        omni_b.enable()
        testbed.kernel.run_until(30.0)
        return device_a.meter.total_charge_mas()

    assert run(3) == run(3)

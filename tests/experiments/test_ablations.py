"""Ablation drivers (full shape assertions live in benchmarks/)."""

import pytest

from repro.experiments.ablations import (
    ablate_adaptive_beacon,
    ablate_context_technology,
    sweep_beacon_interval,
    sweep_secondary_listen,
)


def test_beacon_sweep_latency_tracks_interval():
    points = sweep_beacon_interval(intervals=(0.25, 1.0), idle_window_s=15.0)
    assert len(points) == 2
    fast, slow = points
    assert fast.discovery_latency_s is not None
    assert slow.discovery_latency_s is not None
    assert fast.discovery_latency_s < slow.discovery_latency_s
    assert fast.idle_energy_avg_ma > slow.idle_energy_avg_ma


def test_secondary_listen_sweep_engages():
    points = sweep_secondary_listen(periods=(1.0,), deadline_s=60.0)
    assert points[0].engagement_latency_s is not None


def test_bifurcation_isolates_context_cost():
    results = ablate_context_technology()
    by_tech = {result.context_tech: result for result in results}
    assert by_tech["BLE"].latency_ms < by_tech["WiFi"].latency_ms
    assert by_tech["BLE"].energy_avg_ma < by_tech["WiFi"].energy_avg_ma


def test_adaptive_beacon_trade_off():
    results = ablate_adaptive_beacon(stable_window_s=30.0)
    by_mode = {result.mode: result for result in results}
    assert by_mode["adaptive"].idle_energy_avg_ma < by_mode["fixed"].idle_energy_avg_ma
    assert by_mode["adaptive"].newcomer_discovery_s is not None

"""Latency/series statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.metrics import LatencyTracker, percentile, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 0.5) == 2

    def test_extremes(self):
        values = [1, 2, 3, 4]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 4

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=1))
    def test_property_within_min_max(self, values, fraction):
        result = percentile(values, fraction)
        assert min(values) <= result <= max(values)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.p50 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_series_zero_stddev(self):
        assert summarize([5.0] * 10).stddev == 0.0


class TestLatencyTracker:
    def test_start_stop_records_latency(self):
        tracker = LatencyTracker()
        tracker.start("op", 1.0)
        assert tracker.stop("op", 3.5) == 2.5
        assert tracker.samples == [2.5]

    def test_stop_without_start(self):
        tracker = LatencyTracker()
        assert tracker.stop("ghost", 1.0) is None

    def test_pending_counts_open_operations(self):
        tracker = LatencyTracker()
        tracker.start("a", 0.0)
        tracker.start("b", 0.0)
        tracker.stop("a", 1.0)
        assert tracker.pending == 1

    def test_summary(self):
        tracker = LatencyTracker()
        for index in range(4):
            tracker.start(index, 0.0)
            tracker.stop(index, float(index + 1))
        assert tracker.summary().mean == pytest.approx(2.5)

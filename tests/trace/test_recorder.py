"""Trace recorder."""

from repro.trace.recorder import TraceRecorder


def test_events_carry_time_and_detail(kernel):
    recorder = TraceRecorder(kernel)
    kernel.call_in(1.5, lambda: recorder.record("radio", "scan", channel=6))
    kernel.run()
    event = recorder.events[0]
    assert event.time == 1.5
    assert event.source == "radio"
    assert event.detail == {"channel": 6}


def test_queries(kernel):
    recorder = TraceRecorder(kernel)
    recorder.record("a", "tx")
    recorder.record("b", "tx")
    kernel.call_in(5.0, lambda: recorder.record("a", "rx"))
    kernel.run()
    assert recorder.count("tx") == 2
    assert len(recorder.of_kind("rx")) == 1
    assert len(recorder.from_source("a")) == 2
    assert len(recorder.between(0.0, 1.0)) == 2
    assert len(recorder) == 3


def test_capacity_drops_excess(kernel):
    recorder = TraceRecorder(kernel, capacity=2)
    for index in range(5):
        recorder.record("s", "e", index=index)
    assert len(recorder) == 2
    assert recorder.dropped == 3


def test_filters(kernel):
    recorder = TraceRecorder(kernel)
    recorder.add_filter(lambda event: event.kind != "noise")
    recorder.record("s", "noise")
    recorder.record("s", "signal")
    assert [event.kind for event in recorder] == ["signal"]


def test_dump_is_readable(kernel):
    recorder = TraceRecorder(kernel)
    recorder.record("radio", "scan", n=1)
    text = recorder.dump()
    assert "radio" in text and "scan" in text and "n=1" in text


# -- payload round-trip (the runner's artifact form) ---------------------------


def test_payload_round_trip_preserves_queries(kernel):
    recorder = TraceRecorder(kernel)
    recorder.record("a", "tx", n=1)
    kernel.call_in(2.0, lambda: recorder.record("b", "rx"))
    kernel.run()
    rehydrated = TraceRecorder.from_payload(recorder.to_payload())
    assert len(rehydrated) == 2
    assert rehydrated.count("tx") == 1
    assert len(rehydrated.from_source("b")) == 1
    assert rehydrated.events[0].detail == {"n": 1}
    assert rehydrated.events[1].time == 2.0


def test_payload_uses_compact_tuples(kernel):
    recorder = TraceRecorder(kernel)
    recorder.record("s", "e", x=1)
    payload = recorder.to_payload()
    assert payload["events"] == [(0.0, "s", "e", {"x": 1})]
    assert payload["dropped"] == 0


def test_payload_accepts_json_style_lists(kernel):
    # JSON transports hand lists back where tuples went in.
    payload = {"format": "repro.trace/v1", "dropped": 3,
               "events": [[1.5, "s", "k", {}]]}
    rehydrated = TraceRecorder.from_payload(payload)
    assert rehydrated.events[0].time == 1.5
    assert rehydrated.dropped == 3


def test_payload_format_is_checked():
    import pytest

    with pytest.raises(ValueError, match="repro.trace/v1"):
        TraceRecorder.from_payload({"format": "bogus", "events": []})


def test_rehydrated_recorder_rejects_new_events(kernel):
    import pytest

    recorder = TraceRecorder(kernel)
    recorder.record("s", "e")
    rehydrated = TraceRecorder.from_payload(recorder.to_payload())
    with pytest.raises(RuntimeError, match="no kernel"):
        rehydrated.record("s", "e")

"""Context assignment fallback paths (paper Sec 3.1/3.3 failure handling)."""

import pytest

from repro.core.codes import StatusCode
from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    Testbed,
)
from repro.phy.geometry import Position


def _pair(testbed, techs=OMNI_TECHS_BLE_WIFI):
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, techs)
    omni_b = testbed.omni_manager(device_b, techs)
    omni_a.enable()
    omni_b.enable()
    return omni_a, omni_b


def test_context_payload_size_routes_technology():
    """≤18 B rides BLE; larger payloads silently take multicast; the app
    sees ADD_CONTEXT_SUCCESS either way."""
    testbed = Testbed(seed=401)
    omni_a, omni_b = _pair(testbed)
    small_events, big_events = [], []
    omni_a.add_context({"interval_s": 0.5}, b"tiny",
                       lambda code, info: small_events.append(code))
    omni_a.add_context({"interval_s": 0.5}, bytes(50),
                       lambda code, info: big_events.append(code))
    testbed.kernel.run_until(5.0)
    assert StatusCode.ADD_CONTEXT_SUCCESS in small_events
    assert StatusCode.ADD_CONTEXT_SUCCESS in big_events
    ble = omni_a.device.radio("ble")
    wifi = omni_a.device.radio("wifi")
    assert ble.adv_events_sent > 0  # beacon + tiny context
    assert wifi.multicasts_sent > 0  # the big context


def test_context_impossible_everywhere_reports_failure():
    """A payload too big for every context technology fails cleanly."""
    testbed = Testbed(seed=402)
    omni_a, _ = _pair(testbed, techs=OMNI_TECHS_BLE_ONLY)
    events = []
    omni_a.add_context({"interval_s": 0.5}, bytes(100),
                       lambda code, info: events.append((code, info)))
    testbed.kernel.run_until(2.0)
    assert events
    assert events[0][0] is StatusCode.ADD_CONTEXT_FAILURE


def test_update_growing_payload_migrates_technology():
    """A context that grows past the BLE budget migrates to multicast
    mid-life without the application doing anything; a wide secondary
    listen window lets the BLE-primary receiver catch it promptly and
    engage multicast for continuous reception."""
    from repro.core.manager import OmniConfig

    testbed = Testbed(seed=403)
    config = OmniConfig(secondary_listen_period_s=1.0,
                        secondary_listen_window_s=0.6)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI, config)
    omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI, config)
    omni_a.enable()
    omni_b.enable()
    received = []
    omni_b.request_context(lambda source, ctx: received.append(ctx))
    ids = []
    omni_a.add_context({"interval_s": 0.5}, b"small",
                       lambda code, info: ids.append(info))
    testbed.kernel.run_until(2.0)
    big = bytes(60)
    omni_a.update_context(ids[0], None, big, None)
    testbed.kernel.run_until(15.0)
    assert big in received
    # Content on multicast engaged the technology for continuous listening.
    assert omni_b.beacon_service.is_engaged(TechType.WIFI_MULTICAST)


def test_shrinking_payload_returns_to_ble():
    testbed = Testbed(seed=404)
    omni_a, omni_b = _pair(testbed)
    ids = []
    omni_a.add_context({"interval_s": 0.5}, bytes(60),
                       lambda code, info: ids.append(info))
    testbed.kernel.run_until(3.0)
    ble_before = omni_a.device.radio("ble").adv_events_sent
    omni_a.update_context(ids[0], None, b"tiny", None)
    testbed.kernel.run_until(8.0)
    # The context now advertises on BLE: the BLE event rate roughly doubles
    # (address beacon + context) relative to beacon-only.
    ble_delta = omni_a.device.radio("ble").adv_events_sent - ble_before
    assert ble_delta > 5 / 0.5  # more than one stream's worth over 5 s


def test_remove_context_on_multicast_cleans_overhead():
    testbed = Testbed(seed=405)
    omni_a, _ = _pair(testbed)
    ids = []
    omni_a.add_context({"interval_s": 0.5}, bytes(60),
                       lambda code, info: ids.append(info))
    testbed.kernel.run_until(3.0)
    assert testbed.mesh.channel.overhead_fraction > 0
    events = []
    omni_a.remove_context(ids[0], lambda code, info: events.append(code))
    testbed.kernel.run_until(5.0)
    assert StatusCode.REMOVE_CONTEXT_SUCCESS in events
    # Only the context's overhead goes; the address beacon never used WiFi.
    assert testbed.mesh.channel.overhead_fraction == 0


def test_context_callbacks_survive_peer_churn():
    """Registrations outlive peers: a later arrival still hears context."""
    testbed = Testbed(seed=406)
    omni_a, omni_b = _pair(testbed)
    omni_a.add_context({"interval_s": 0.5}, b"evergreen", None)
    testbed.kernel.run_until(2.0)
    omni_b.disable()
    testbed.kernel.run_until(20.0)
    device_c = testbed.add_device("c", position=Position(5, 0))
    omni_c = testbed.omni_manager(device_c, OMNI_TECHS_BLE_WIFI)
    omni_c.enable()
    received = []
    omni_c.request_context(lambda source, ctx: received.append(ctx))
    testbed.kernel.run_until(25.0)
    assert b"evergreen" in received

"""NFC inside the Omni stack, and larger neighborhoods."""

import pytest

from repro.core.tech import TechType
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.phy.geometry import Position
from repro.phy.mobility import WaypointPath

NFC_STACK = {TechType.BLE_BEACON, TechType.NFC_TAP, TechType.WIFI_TCP,
             TechType.WIFI_MULTICAST}


def test_nfc_tap_exchanges_context_in_omni_stack():
    """The Fig 3 configuration: context on both BLE and NFC.  Two devices
    brought into contact exchange context over NFC even with BLE disabled
    (e.g. airplane-mode BLE, tap-to-share still works)."""
    testbed = Testbed(seed=501)
    device_a = testbed.add_device("a", position=Position(0, 0),
                                  radio_kinds={"ble", "wifi", "nfc"})
    device_b = testbed.add_device("b", position=Position(0.05, 0),
                                  radio_kinds={"ble", "wifi", "nfc"})
    omni_a = testbed.omni_manager(device_a, NFC_STACK)
    omni_b = testbed.omni_manager(device_b, NFC_STACK)
    omni_a.enable()
    omni_b.enable()
    # Kill BLE on both: NFC must be engaged via the secondary probe.
    device_a.radio("ble").disable()
    device_b.radio("ble").disable()
    received = []
    omni_b.request_context(lambda source, ctx: received.append(ctx))
    omni_a.add_context({"interval_s": 0.5}, b"tap-me", None)
    testbed.kernel.run_until(30.0)
    assert b"tap-me" in received


def test_six_device_neighborhood_full_mesh_discovery():
    testbed = Testbed(seed=502)
    managers = []
    for index in range(6):
        device = testbed.add_device(
            f"d{index}", position=Position(float(index % 3) * 8, float(index // 3) * 8)
        )
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI)
        manager.enable()
        managers.append(manager)
    testbed.kernel.run_until(3.0)
    for manager in managers:
        assert len(manager.neighbors()) == 5


def test_six_device_any_to_any_data():
    testbed = Testbed(seed=503)
    managers = []
    for index in range(6):
        device = testbed.add_device(
            f"d{index}", position=Position(float(index % 3) * 8, float(index // 3) * 8)
        )
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI)
        manager.enable()
        managers.append(manager)
    testbed.kernel.run_until(2.0)
    received = {index: [] for index in range(6)}
    for index, manager in enumerate(managers):
        manager.request_data(
            lambda source, data, index=index: received[index].append(data)
        )
    # Everyone sends one message to everyone else, simultaneously.
    for index, manager in enumerate(managers):
        destinations = [m.omni_address for j, m in enumerate(managers) if j != index]
        manager.send_data(destinations, f"from-{index}".encode(), None)
    testbed.kernel.run_until(testbed.kernel.now + 10.0)
    for index in range(6):
        assert len(received[index]) == 5, f"device {index}"


def test_walkby_discovery_and_interaction_window():
    """A device walking past a static one at 2 m/s: discovered, usable,
    then gone — the transient-encounter pattern of Sec 2.2."""
    testbed = Testbed(seed=504)
    static_device = testbed.add_device("kiosk", position=Position(0, 0))
    path = WaypointPath([
        (0.0, Position(-60, 5)),
        (60.0, Position(60, 5)),
    ])
    walker_device = testbed.add_device("walker", mobility=path)
    kiosk = testbed.omni_manager(static_device, OMNI_TECHS_BLE_WIFI)
    walker = testbed.omni_manager(walker_device, OMNI_TECHS_BLE_WIFI)
    kiosk.enable()
    walker.enable()
    visible = []
    time = 0.0
    while time < 60.0:
        time += 0.5
        testbed.kernel.run_until(time)
        visible.append(
            (time, kiosk.omni_address in walker.neighbors())
        )
    seen_spans = [t for t, flag in visible if flag]
    assert seen_spans, "never discovered"
    # BLE range 30 m at 2 m/s: visible for roughly the middle ~30-40 s
    # (staleness stretches the tail).
    assert 10 < min(seen_spans) < 20
    assert len(seen_spans) * 0.5 < 50

"""Cross-layer integration scenarios."""

import pytest

from repro.core.codes import StatusCode
from repro.core.manager import OmniConfig
from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    Testbed,
)
from repro.net.payload import VirtualPayload
from repro.phy.geometry import Position
from repro.phy.mobility import WaypointPath


def test_full_stack_discovery_to_bulk_transfer():
    """The paper's core story on one pair: discover over BLE, bulk over WiFi."""
    testbed = Testbed(seed=101)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI)
    omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI)
    omni_a.enable()
    omni_b.enable()
    testbed.kernel.run_until(1.0)

    received = []
    omni_b.request_data(lambda source, data: received.append((testbed.kernel.now, data)))
    start = testbed.kernel.now
    omni_a.send_data([omni_b.omni_address], VirtualPayload(25_000_000), None)
    testbed.kernel.run_until(start + 10.0)
    elapsed = received[0][0] - start
    # Fast peering + ~3.09 s transfer; no scan ever happened.
    assert elapsed == pytest.approx(3.1, abs=0.1)
    assert device_a.radio("wifi").scans_performed == 0


def test_mobility_breaks_and_restores_discovery():
    """A peer walking out of range disappears; returning re-discovers it."""
    testbed = Testbed(seed=102)
    static = testbed.add_device("static", position=Position(0, 0))
    path = WaypointPath([
        (0.0, Position(10, 0)),
        (5.0, Position(10, 0)),
        (10.0, Position(200, 0)),  # gone
        (20.0, Position(200, 0)),
        (25.0, Position(10, 0)),  # back
    ])
    walker = testbed.add_device("walker", mobility=path)
    omni_static = testbed.omni_manager(static, OMNI_TECHS_BLE_ONLY)
    omni_walker = testbed.omni_manager(walker, OMNI_TECHS_BLE_ONLY)
    omni_static.enable()
    omni_walker.enable()

    testbed.kernel.run_until(5.0)
    assert omni_walker.omni_address in omni_static.neighbors()
    testbed.kernel.run_until(22.0)  # walker far away, entries staled out
    assert omni_walker.omni_address not in omni_static.neighbors()
    testbed.kernel.run_until(27.0)
    assert omni_walker.omni_address in omni_static.neighbors()


def test_data_failover_from_wifi_to_ble():
    """If the WiFi path fails mid-request, Omni retries over BLE before
    reporting failure (paper Sec 3.1, Handling Failures)."""
    testbed = Testbed(seed=103)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI)
    omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI)
    omni_a.enable()
    omni_b.enable()
    testbed.kernel.run_until(1.0)

    # Sabotage WiFi on the receiver: its radio goes dark, so the TCP path
    # fails; BLE must carry the (small) payload instead.
    device_b.radio("wifi").disable()
    received = []
    omni_b.request_data(lambda source, data: received.append(data))
    events = []
    omni_a.send_data([omni_b.omni_address], b"x" * 20,
                     lambda code, info: events.append(code))
    testbed.kernel.run_until(testbed.kernel.now + 5.0)
    assert events == [StatusCode.SEND_DATA_SUCCESS]
    assert received == [b"x" * 20]


def test_data_failure_after_all_techs_exhausted():
    testbed = Testbed(seed=104)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a, OMNI_TECHS_BLE_WIFI)
    omni_b = testbed.omni_manager(device_b, OMNI_TECHS_BLE_WIFI)
    omni_a.enable()
    omni_b.enable()
    testbed.kernel.run_until(1.0)

    # Everything on the receiver goes dark at once.
    device_b.radio("wifi").disable()
    device_b.radio("ble").disable()
    events = []
    omni_a.send_data([omni_b.omni_address], b"x" * 20,
                     lambda code, info: events.append((code, info)))
    testbed.kernel.run_until(testbed.kernel.now + 10.0)
    assert events and events[0][0] is StatusCode.SEND_DATA_FAILURE


def test_three_apps_one_manager():
    """Omni is a shared service: multiple callbacks coexist per device."""
    testbed = Testbed(seed=105)
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(10, 0))
    omni_a = testbed.omni_manager(device_a)
    omni_b = testbed.omni_manager(device_b)
    omni_a.enable()
    omni_b.enable()

    app1, app2 = [], []
    omni_b.request_context(lambda source, ctx: app1.append(ctx))
    omni_b.request_context(lambda source, ctx: app2.append(ctx))
    omni_a.add_context({"interval_s": 0.5}, b"both", None)
    testbed.kernel.run_until(2.0)
    assert app1 and app2


def test_kernel_determinism_across_full_stack():
    def run(seed):
        testbed = Testbed(seed=seed)
        devices = [
            testbed.add_device(f"d{i}", position=Position(float(i * 7), 0))
            for i in range(3)
        ]
        managers = [testbed.omni_manager(device) for device in devices]
        for manager in managers:
            manager.enable()
        received = []
        managers[2].request_data(lambda source, data: received.append(testbed.kernel.now))
        testbed.kernel.run_until(1.0)
        managers[0].send_data([managers[2].omni_address], b"hello", None)
        testbed.kernel.run_until(5.0)
        return received, devices[0].meter.total_charge_mas()

    assert run(7) == run(7)

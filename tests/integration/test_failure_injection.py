"""Failure injection across the stack.

The paper's Sec 3.3 "Handling Failures" argues Omni's connection-less
context distribution makes it resilient: "connection-less technologies by
design have no connections to break".  These tests break things mid-flight
and check the middleware degrades the way the paper describes.
"""

import pytest

from repro.core.codes import StatusCode
from repro.core.manager import OmniConfig
from repro.core.tech import TechType
from repro.experiments.scenario import (
    OMNI_TECHS_BLE_ONLY,
    OMNI_TECHS_BLE_WIFI,
    Testbed,
)
from repro.net.payload import VirtualPayload
from repro.phy.geometry import Position


def _pair(testbed, techs=OMNI_TECHS_BLE_WIFI, distance=10.0, config=None):
    device_a = testbed.add_device("a", position=Position(0, 0))
    device_b = testbed.add_device("b", position=Position(distance, 0))
    omni_a = testbed.omni_manager(device_a, techs, config)
    omni_b = testbed.omni_manager(device_b, techs, config)
    omni_a.enable()
    omni_b.enable()
    return omni_a, omni_b


def test_receiver_radio_dies_during_bulk_transfer():
    """The 25 MB transfer's destination powers off mid-flight: the sender
    gets a failure (BLE cannot carry the bulk payload either)."""
    testbed = Testbed(seed=301)
    omni_a, omni_b = _pair(testbed)
    testbed.kernel.run_until(1.0)
    events = []
    omni_a.send_data([omni_b.omni_address], VirtualPayload(25_000_000),
                     lambda code, info: events.append((code, info)))
    testbed.kernel.call_in(1.0, omni_b.device.radio("wifi").disable)
    # The TCP attempt fails at completion time; Omni then faithfully tries
    # the multicast pool (~190 s for 25 MB) before reporting failure.
    testbed.kernel.run_until(testbed.kernel.now + 300.0)
    assert events and events[0][0] is StatusCode.SEND_DATA_FAILURE


def test_context_keeps_flowing_while_wifi_flaps():
    """Context rides BLE; a flapping WiFi radio must not interrupt it."""
    testbed = Testbed(seed=302)
    omni_a, omni_b = _pair(testbed)
    received = []
    omni_b.request_context(lambda source, ctx: received.append(testbed.kernel.now))
    omni_a.add_context({"interval_s": 0.5}, b"steady", None)
    wifi = omni_a.device.radio("wifi")
    for toggle_at in (2.0, 4.0, 6.0, 8.0):
        testbed.kernel.call_at(toggle_at, wifi.disable if toggle_at % 4 < 2
                               else wifi.enable)
    testbed.kernel.run_until(10.0)
    gaps = [b - a for a, b in zip(received, received[1:])]
    assert max(gaps) < 1.0  # never a dropout longer than two periods


def test_peer_departure_mid_neighborhood_is_contained():
    """One of three peers leaves; the other pairing keeps working."""
    testbed = Testbed(seed=303)
    managers = []
    for index, position in enumerate(
        (Position(0, 0), Position(10, 0), Position(5, 8))
    ):
        device = testbed.add_device(f"d{index}", position=position)
        manager = testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI)
        manager.enable()
        managers.append(manager)
    testbed.kernel.run_until(1.0)
    managers[2].disable()
    testbed.kernel.run_until(15.0)
    assert managers[2].omni_address not in managers[0].neighbors()
    received = []
    managers[1].request_data(lambda source, data: received.append(data))
    managers[0].send_data([managers[1].omni_address], b"still-works", None)
    testbed.kernel.run_until(testbed.kernel.now + 2.0)
    assert received == [b"still-works"]


def test_ble_only_pair_survives_wifi_never_existing():
    testbed = Testbed(seed=304)
    omni_a, omni_b = _pair(testbed, techs=OMNI_TECHS_BLE_ONLY)
    testbed.kernel.run_until(1.0)
    received = []
    omni_b.request_data(lambda source, data: received.append(data))
    omni_a.send_data([omni_b.omni_address], b"small", None)
    testbed.kernel.run_until(testbed.kernel.now + 1.0)
    assert received == [b"small"]


def test_failover_is_transparent_to_the_application():
    """The app's callback sees exactly one SUCCESS even though the first
    technology failed internally (paper Sec 3.1)."""
    testbed = Testbed(seed=305)
    omni_a, omni_b = _pair(testbed)
    testbed.kernel.run_until(1.0)
    omni_b.device.radio("wifi").disable()  # WiFi TCP will fail
    events = []
    received = []
    omni_b.request_data(lambda source, data: received.append(data))
    omni_a.send_data([omni_b.omni_address], b"via-ble-then",
                     lambda code, info: events.append(code))
    testbed.kernel.run_until(testbed.kernel.now + 5.0)
    assert events == [StatusCode.SEND_DATA_SUCCESS]
    assert received == [b"via-ble-then"]


def test_simultaneous_sends_during_receiver_failure():
    """Multiple in-flight requests against a dying receiver all resolve."""
    testbed = Testbed(seed=306)
    omni_a, omni_b = _pair(testbed)
    testbed.kernel.run_until(1.0)
    events = []
    for index in range(5):
        omni_a.send_data([omni_b.omni_address], VirtualPayload(5_000_000),
                         lambda code, info: events.append(code))
    testbed.kernel.call_in(0.5, omni_b.device.radio("wifi").disable)
    # Each request fails over to the slow multicast pool before resolving.
    testbed.kernel.run_until(testbed.kernel.now + 400.0)
    assert len(events) == 5  # every request resolved, one way or the other
    assert StatusCode.SEND_DATA_FAILURE in events


def test_rediscovery_after_total_blackout():
    """Both radios off, then both back on: the pair re-forms by itself."""
    testbed = Testbed(seed=307)
    config = OmniConfig(peer_staleness_s=3.0)
    omni_a, omni_b = _pair(testbed, config=config)
    testbed.kernel.run_until(1.0)
    assert omni_b.omni_address in omni_a.neighbors()

    ble = omni_b.device.radio("ble")
    wifi = omni_b.device.radio("wifi")
    # The adapters notice nothing (their radios just go silent) — only the
    # staleness machinery can recover, which is the point.
    ble.disable()
    wifi.disable()
    testbed.kernel.run_until(6.0)
    assert omni_b.omni_address not in omni_a.neighbors()
    ble.enable()
    wifi.enable()
    # b's BLE adapter re-arms its advertising sets? No: the radio was
    # disabled under the adapter. Re-enabling the manager-level stack is
    # the supported recovery path.
    omni_b.disable()
    omni_b2 = testbed.omni_manager(omni_b.device, OMNI_TECHS_BLE_WIFI)
    omni_b2.enable()
    testbed.kernel.run_until(10.0)
    assert omni_b2.omni_address in omni_a.neighbors()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.mesh import MeshNetwork
from repro.phy.geometry import Position
from repro.phy.world import World
from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.medium import Medium
from repro.radio.nfc import NfcRadio
from repro.radio.wifi import WifiRadio
from repro.sim.kernel import Kernel


@pytest.fixture
def kernel():
    """A fresh simulation kernel with a fixed seed."""
    return Kernel(seed=1234)


@pytest.fixture
def world(kernel):
    """An empty world on the kernel clock."""
    return World(kernel)


@pytest.fixture
def medium(kernel, world):
    """A wireless medium over the world."""
    return Medium(kernel, world)


@pytest.fixture
def mesh(kernel):
    """A mesh network with default capacities."""
    return MeshNetwork(kernel, "test-mesh")


class DeviceFactory:
    """Creates fully-equipped devices at given positions."""

    def __init__(self, kernel, world, medium):
        self.kernel = kernel
        self.world = world
        self.medium = medium

    def __call__(self, name, x=0.0, y=0.0, radios=("ble", "wifi"), enable=True):
        node = self.world.add_node(name, position=Position(x, y))
        device = Device(self.kernel, node)
        if "ble" in radios:
            device.add_radio(BleRadio(device, self.medium))
        if "wifi" in radios:
            device.add_radio(WifiRadio(device, self.medium))
        if "nfc" in radios:
            device.add_radio(NfcRadio(device, self.medium))
        if enable:
            for radio in device.radios.values():
                radio.enable()
        return device


@pytest.fixture
def make_device(kernel, world, medium):
    """Factory fixture: ``make_device("a", x=0)`` → enabled Device."""
    return DeviceFactory(kernel, world, medium)

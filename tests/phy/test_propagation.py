"""Propagation models."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.propagation import (
    LogDistance,
    SoftDisk,
    UnitDisk,
    frame_delivered,
)
from repro.util.rng import SeededRng


class TestUnitDisk:
    def test_inside_and_outside(self):
        model = UnitDisk(30.0)
        assert model.delivery_probability(0.0) == 1.0
        assert model.delivery_probability(30.0) == 1.0
        assert model.delivery_probability(30.001) == 0.0

    def test_in_range_matches_probability(self):
        model = UnitDisk(10.0)
        assert model.in_range(10.0)
        assert not model.in_range(10.1)


class TestSoftDisk:
    def test_plateau_then_falloff(self):
        model = SoftDisk(inner=10.0, outer=20.0)
        assert model.delivery_probability(5.0) == 1.0
        assert model.delivery_probability(15.0) == pytest.approx(0.5)
        assert model.delivery_probability(20.0) == 0.0

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            SoftDisk(inner=20.0, outer=10.0)
        with pytest.raises(ValueError):
            SoftDisk(inner=0.0, outer=10.0)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_probability_in_unit_interval(self, distance):
        model = SoftDisk(inner=10.0, outer=40.0)
        assert 0.0 <= model.delivery_probability(distance) <= 1.0


class TestLogDistance:
    def test_half_probability_at_reference(self):
        model = LogDistance(reference_range=50.0)
        assert model.delivery_probability(50.0) == pytest.approx(0.5)

    def test_monotonically_decreasing(self):
        model = LogDistance(reference_range=30.0)
        probabilities = [model.delivery_probability(d) for d in (1, 10, 30, 60, 120)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_zero_distance_certain(self):
        assert LogDistance(10.0).delivery_probability(0.0) == 1.0

    def test_in_range_cutoff(self):
        model = LogDistance(reference_range=30.0, exponent=4.0)
        assert model.in_range(30.0)
        assert not model.in_range(3000.0)


class TestFrameDelivered:
    def test_certain_delivery_skips_rng(self):
        model = UnitDisk(10.0)
        rng = SeededRng(0)
        before = rng.random()
        rng2 = SeededRng(0)
        assert frame_delivered(model, 5.0, rng2)
        # The rng was not consumed for a certain delivery.
        assert rng2.random() == before

    def test_impossible_delivery(self):
        assert not frame_delivered(UnitDisk(10.0), 11.0, SeededRng(0))

    def test_probabilistic_zone_mixes(self):
        model = SoftDisk(inner=1.0, outer=100.0)
        rng = SeededRng(7)
        outcomes = {frame_delivered(model, 50.0, rng) for _ in range(100)}
        assert outcomes == {True, False}

"""Batch position surfaces == their scalar references, bit for bit.

``MobilityModel.positions_at`` / ``positions_for`` / ``array.grid_cells``
/ ``UniformGridIndex.insert_batch`` are the rebucketing path's batch
twins of ``position_at`` / ``math.floor(x / size)`` / per-item
``insert``.  Every test here asserts exact float and bucket-order
equality — the invariant the time-aware grid's epoch rebucketing (and
therefore every delivery log) rests on — under both backends.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.phy.geometry import Position
from repro.phy.index import UniformGridIndex
from repro.phy.mobility import (
    Linear,
    MobilityModel,
    RandomWaypoint,
    Static,
    WaypointPath,
    positions_for,
)
from repro.util import array
from repro.util.rng import SeededRng


@contextmanager
def _python_backend():
    saved = array.numpy
    array.numpy = None
    try:
        yield
    finally:
        array.numpy = saved


def _mixed_models(rng: SeededRng, count: int):
    models = []
    for i in range(count):
        start = Position(rng.uniform(-50.0, 200.0), rng.uniform(-50.0, 200.0))
        flavor = i % 4
        if flavor == 0:
            models.append(Static(start))
        elif flavor == 1:
            models.append(
                Linear(
                    start,
                    (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)),
                    start_time=rng.uniform(0.0, 20.0),
                )
            )
        elif flavor == 2:
            models.append(
                RandomWaypoint(
                    rng.child("bp-walk", str(i)),
                    width=200.0,
                    height=200.0,
                    speed=rng.uniform(0.5, 3.0),
                )
            )
        else:
            models.append(
                WaypointPath(
                    [
                        (0.0, start),
                        (25.0, Position(rng.uniform(0.0, 200.0),
                                        rng.uniform(0.0, 200.0))),
                    ]
                )
            )
    return models


def _assert_batch_matches_scalar(models, time):
    xs, ys = positions_for(models, time)
    assert len(xs) == len(ys) == len(models)
    for model, x, y in zip(models, xs, ys):
        exact = model.position_at(time)
        assert (x, y) == (exact.x, exact.y)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    time=st.floats(min_value=-5.0, max_value=60.0,
                   allow_nan=False, allow_infinity=False),
)
def test_positions_for_is_bit_identical_both_backends(seed, time):
    rng = SeededRng(seed)
    models = _mixed_models(rng, 17)
    _assert_batch_matches_scalar(models, time)
    with _python_backend():
        _assert_batch_matches_scalar(models, time)


def test_linear_batch_clamps_before_start_time():
    # The vectorized maximum(0, t - t0) must clamp exactly like the
    # scalar max(): a model queried before its start_time sits at start.
    models = [Linear(Position(1.0, 2.0), (5.0, -5.0), start_time=10.0),
              Linear(Position(3.0, 4.0), (1.0, 1.0), start_time=0.0)]
    xs, ys = Linear.positions_at(models, 4.0)
    assert (xs[0], ys[0]) == (1.0, 2.0)
    assert (xs[1], ys[1]) == (7.0, 8.0)


def test_scalar_override_without_batch_twin_delegates():
    class Hovering(Linear):
        def position_at(self, time):
            base = Linear.position_at(self, time)
            return Position(base.x, base.y + 1.0)

    models = [Hovering(Position(0.0, 0.0), (2.0, 0.0)) for _ in range(3)]
    xs, ys = Hovering.positions_at(models, 3.0)
    # The inherited batch method must route through the override, never
    # apply Linear's packed formula to a subclass that changed the rules.
    assert xs == [6.0, 6.0, 6.0]
    assert ys == [1.0, 1.0, 1.0]


def test_base_default_positions_at_is_the_elementwise_loop():
    class Orbit(MobilityModel):
        def __init__(self, phase):
            self.phase = phase

        def position_at(self, time):
            return Position(math.cos(time + self.phase),
                            math.sin(time + self.phase))

    models = [Orbit(0.0), Orbit(1.5)]
    xs, ys = MobilityModel.positions_at(models, 2.0)
    for model, x, y in zip(models, xs, ys):
        exact = model.position_at(2.0)
        assert (x, y) == (exact.x, exact.y)


@settings(max_examples=25, deadline=None)
@given(
    coords=st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=40,
    ),
    cell_size=st.floats(min_value=0.1, max_value=500.0,
                        allow_nan=False, allow_infinity=False),
)
def test_grid_cells_matches_math_floor_both_backends(coords, cell_size):
    xs = coords
    ys = [-(v) for v in coords]
    expected_x = [math.floor(v / cell_size) for v in xs]
    expected_y = [math.floor(v / cell_size) for v in ys]
    assert array.grid_cells(xs, ys, cell_size) == (expected_x, expected_y)
    with _python_backend():
        assert array.grid_cells(xs, ys, cell_size) == (expected_x, expected_y)


def test_grid_cells_rejects_mismatched_lengths():
    try:
        array.grid_cells([1.0, 2.0], [1.0], 10.0)
    except ValueError:
        pass
    else:
        raise AssertionError("length mismatch must raise ValueError")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_insert_batch_equals_sequential_inserts(seed):
    rng = SeededRng(seed)
    items = [f"b{i}" for i in range(30)]
    xs = [rng.uniform(-80.0, 80.0) for _ in items]
    ys = [rng.uniform(-80.0, 80.0) for _ in items]

    loop = UniformGridIndex(cell_size=10.0)
    for item, x, y in zip(items, xs, ys):
        loop.insert(item, Position(x, y))
    batched = UniformGridIndex(cell_size=10.0)
    batched.insert_batch(items, xs, ys)

    # Same buckets, same within-bucket order — the order _rebucket's
    # movers iterate in, hence the order RNG draws are spent in.
    for origin in (Position(0.0, 0.0), Position(-40.0, 55.0)):
        for radius in (15.0, 60.0, 200.0):
            assert (batched.query(origin, radius, 0.0)
                    == loop.query(origin, radius, 0.0))
    for item, x, y in zip(items, xs, ys):
        assert batched.position_of(item) == Position(x, y)

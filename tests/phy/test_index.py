"""The uniform-grid spatial index and its wiring into the world."""

import pytest

from repro.phy.geometry import Position
from repro.phy.index import UniformGridIndex
from repro.phy.mobility import Linear, Static
from repro.phy.world import World
from repro.sim.kernel import Kernel


def test_query_returns_superset_within_radius():
    index = UniformGridIndex(10.0)
    index.insert("near", Position(3.0, 4.0))
    index.insert("far", Position(200.0, 200.0))
    candidates = index.query(Position(0.0, 0.0), 10.0)
    assert "near" in candidates
    assert "far" not in candidates


def test_boundary_item_is_always_a_candidate():
    index = UniformGridIndex(30.0)
    index.insert("edge", Position(30.0, 0.0))
    assert "edge" in index.query(Position(0.0, 0.0), 30.0)


def test_roaming_items_match_every_query():
    index = UniformGridIndex(10.0)
    index.insert("rover", None)
    assert index.roaming_count == 1
    assert "rover" in index.query(Position(1e6, 1e6), 0.001)


def test_update_moves_between_cells():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.update("a", Position(500.0, 500.0))
    assert "a" not in index.query(Position(0.0, 0.0), 10.0)
    assert "a" in index.query(Position(500.0, 500.0), 10.0)


def test_update_to_and_from_roaming():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.update("a", None)
    assert index.roaming_count == 1
    assert "a" in index.query(Position(900.0, 900.0), 1.0)
    index.update("a", Position(900.0, 900.0))
    assert index.roaming_count == 0
    assert "a" in index.query(Position(900.0, 900.0), 1.0)


def test_remove_and_reinsert():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.remove("a")
    assert "a" not in index
    assert index.query(Position(0.0, 0.0), 10.0) == []
    index.insert("a", Position(0.0, 0.0))
    assert "a" in index


def test_double_insert_rejected():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    with pytest.raises(ValueError):
        index.insert("a", Position(1.0, 1.0))


def test_negative_coordinates_bucket_correctly():
    index = UniformGridIndex(10.0)
    index.insert("sw", Position(-5.0, -5.0))
    assert "sw" in index.query(Position(0.0, 0.0), 10.0)
    assert "sw" not in index.query(Position(50.0, 50.0), 10.0)


def test_cell_size_must_be_positive():
    with pytest.raises(ValueError):
        UniformGridIndex(0.0)


# -- world wiring ------------------------------------------------------------


def test_nodes_within_tracks_move_to():
    world = World(Kernel(seed=1))
    center = world.add_node("center", position=Position(0.0, 0.0))
    other = world.add_node("other", position=Position(500.0, 0.0))
    assert world.nodes_within(center, 50.0) == []
    other.move_to(Position(10.0, 0.0))
    assert world.nodes_within(center, 50.0) == [other]
    other.move_to(Position(400.0, 0.0))
    assert world.nodes_within(center, 50.0) == []


def test_nodes_within_sees_mobile_nodes():
    kernel = Kernel(seed=1)
    world = World(kernel)
    center = world.add_node("center", position=Position(0.0, 0.0))
    walker = world.add_node(
        "walker", mobility=Linear(Position(200.0, 0.0), (-10.0, 0.0))
    )
    assert world.nodes_within(center, 30.0) == []
    kernel.run_until(18.0)  # walker now at x=20
    assert world.nodes_within(center, 30.0) == [walker]


def test_mobile_node_pinned_by_move_to_is_reindexed():
    kernel = Kernel(seed=1)
    world = World(kernel)
    center = world.add_node("center", position=Position(0.0, 0.0))
    walker = world.add_node(
        "walker", mobility=Linear(Position(200.0, 0.0), (-10.0, 0.0))
    )
    walker.move_to(Position(5.0, 0.0))
    assert type(walker.mobility) is Static
    assert world.nodes_within(center, 30.0) == [walker]


def test_remove_node_leaves_index_consistent():
    world = World(Kernel(seed=1))
    center = world.add_node("center", position=Position(0.0, 0.0))
    world.add_node("doomed", position=Position(5.0, 0.0))
    world.remove_node("doomed")
    assert world.nodes_within(center, 50.0) == []


# -- roaming bookkeeping: O(1) swap-pop removal -------------------------------


def test_roaming_removal_from_middle_keeps_the_rest():
    index = UniformGridIndex(10.0)
    for name in ("r0", "r1", "r2", "r3"):
        index.insert(name, None)
    index.remove("r1")
    assert index.roaming_count == 3
    candidates = index.query(Position(0.0, 0.0), 1.0)
    assert set(candidates) == {"r0", "r2", "r3"}
    # Swap-pop order: the then-last item fills the vacated slot.
    assert candidates == ["r0", "r3", "r2"]


def test_roaming_removal_of_tail():
    index = UniformGridIndex(10.0)
    index.insert("r0", None)
    index.insert("r1", None)
    index.remove("r1")
    assert index.query(Position(0.0, 0.0), 1.0) == ["r0"]
    index.remove("r0")
    assert index.roaming_count == 0
    assert index.query(Position(0.0, 0.0), 1.0) == []


def test_roaming_query_order_is_deterministic():
    def churn():
        index = UniformGridIndex(5.0)
        for item in range(8):
            index.insert(item, None)
        for item in (3, 0, 6):
            index.remove(item)
        index.insert(8, None)
        index.update(4, Position(1.0, 1.0))  # roaming -> static
        index.update(4, None)  # and back
        return index.query(Position(100.0, 100.0), 1.0)

    assert churn() == churn()


def test_roaming_heavy_churn_stays_consistent():
    index = UniformGridIndex(10.0)
    alive = set()
    for step in range(200):
        item = step % 37
        if item in alive:
            index.remove(item)
            alive.discard(item)
        else:
            index.insert(item, None)
            alive.add(item)
    assert index.roaming_count == len(alive)
    assert set(index.query(Position(0.0, 0.0), 1.0)) == alive

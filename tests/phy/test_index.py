"""The uniform-grid spatial index and its wiring into the world."""

import pytest

from repro.phy.geometry import Position
from repro.phy.index import UniformGridIndex
from repro.phy.mobility import Linear, Static
from repro.phy.world import World
from repro.sim.kernel import Kernel


def test_query_returns_superset_within_radius():
    index = UniformGridIndex(10.0)
    index.insert("near", Position(3.0, 4.0))
    index.insert("far", Position(200.0, 200.0))
    candidates = index.query(Position(0.0, 0.0), 10.0)
    assert "near" in candidates
    assert "far" not in candidates


def test_boundary_item_is_always_a_candidate():
    index = UniformGridIndex(30.0)
    index.insert("edge", Position(30.0, 0.0))
    assert "edge" in index.query(Position(0.0, 0.0), 30.0)


def test_roaming_items_match_every_query():
    index = UniformGridIndex(10.0)
    index.insert("rover", None)
    assert index.roaming_count == 1
    assert "rover" in index.query(Position(1e6, 1e6), 0.001)


def test_update_moves_between_cells():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.update("a", Position(500.0, 500.0))
    assert "a" not in index.query(Position(0.0, 0.0), 10.0)
    assert "a" in index.query(Position(500.0, 500.0), 10.0)


def test_update_to_and_from_roaming():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.update("a", None)
    assert index.roaming_count == 1
    assert "a" in index.query(Position(900.0, 900.0), 1.0)
    index.update("a", Position(900.0, 900.0))
    assert index.roaming_count == 0
    assert "a" in index.query(Position(900.0, 900.0), 1.0)


def test_remove_and_reinsert():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    index.remove("a")
    assert "a" not in index
    assert index.query(Position(0.0, 0.0), 10.0) == []
    index.insert("a", Position(0.0, 0.0))
    assert "a" in index


def test_double_insert_rejected():
    index = UniformGridIndex(10.0)
    index.insert("a", Position(0.0, 0.0))
    with pytest.raises(ValueError):
        index.insert("a", Position(1.0, 1.0))


def test_negative_coordinates_bucket_correctly():
    index = UniformGridIndex(10.0)
    index.insert("sw", Position(-5.0, -5.0))
    assert "sw" in index.query(Position(0.0, 0.0), 10.0)
    assert "sw" not in index.query(Position(50.0, 50.0), 10.0)


def test_cell_size_must_be_positive():
    with pytest.raises(ValueError):
        UniformGridIndex(0.0)


# -- world wiring ------------------------------------------------------------


def test_nodes_within_tracks_move_to():
    world = World(Kernel(seed=1))
    center = world.add_node("center", position=Position(0.0, 0.0))
    other = world.add_node("other", position=Position(500.0, 0.0))
    assert world.nodes_within(center, 50.0) == []
    other.move_to(Position(10.0, 0.0))
    assert world.nodes_within(center, 50.0) == [other]
    other.move_to(Position(400.0, 0.0))
    assert world.nodes_within(center, 50.0) == []


def test_nodes_within_sees_mobile_nodes():
    kernel = Kernel(seed=1)
    world = World(kernel)
    center = world.add_node("center", position=Position(0.0, 0.0))
    walker = world.add_node(
        "walker", mobility=Linear(Position(200.0, 0.0), (-10.0, 0.0))
    )
    assert world.nodes_within(center, 30.0) == []
    kernel.run_until(18.0)  # walker now at x=20
    assert world.nodes_within(center, 30.0) == [walker]


def test_mobile_node_pinned_by_move_to_is_reindexed():
    kernel = Kernel(seed=1)
    world = World(kernel)
    center = world.add_node("center", position=Position(0.0, 0.0))
    walker = world.add_node(
        "walker", mobility=Linear(Position(200.0, 0.0), (-10.0, 0.0))
    )
    walker.move_to(Position(5.0, 0.0))
    assert type(walker.mobility) is Static
    assert world.nodes_within(center, 30.0) == [walker]


def test_remove_node_leaves_index_consistent():
    world = World(Kernel(seed=1))
    center = world.add_node("center", position=Position(0.0, 0.0))
    world.add_node("doomed", position=Position(5.0, 0.0))
    world.remove_node("doomed")
    assert world.nodes_within(center, 50.0) == []


# -- roaming bookkeeping: O(1) swap-pop removal -------------------------------


def test_roaming_removal_from_middle_keeps_the_rest():
    index = UniformGridIndex(10.0)
    for name in ("r0", "r1", "r2", "r3"):
        index.insert(name, None)
    index.remove("r1")
    assert index.roaming_count == 3
    candidates = index.query(Position(0.0, 0.0), 1.0)
    assert set(candidates) == {"r0", "r2", "r3"}
    # Swap-pop order: the then-last item fills the vacated slot.
    assert candidates == ["r0", "r3", "r2"]


def test_roaming_removal_of_tail():
    index = UniformGridIndex(10.0)
    index.insert("r0", None)
    index.insert("r1", None)
    index.remove("r1")
    assert index.query(Position(0.0, 0.0), 1.0) == ["r0"]
    index.remove("r0")
    assert index.roaming_count == 0
    assert index.query(Position(0.0, 0.0), 1.0) == []


def test_roaming_query_order_is_deterministic():
    def churn():
        index = UniformGridIndex(5.0)
        for item in range(8):
            index.insert(item, None)
        for item in (3, 0, 6):
            index.remove(item)
        index.insert(8, None)
        index.update(4, Position(1.0, 1.0))  # roaming -> static
        index.update(4, None)  # and back
        return index.query(Position(100.0, 100.0), 1.0)

    assert churn() == churn()


def test_roaming_heavy_churn_stays_consistent():
    index = UniformGridIndex(10.0)
    alive = set()
    for step in range(200):
        item = step % 37
        if item in alive:
            index.remove(item)
            alive.discard(item)
        else:
            index.insert(item, None)
            alive.add(item)
    assert index.roaming_count == len(alive)
    assert set(index.query(Position(0.0, 0.0), 1.0)) == alive


# -- the time-aware epoch-bucketed grid ---------------------------------------


from repro.phy.index import MAX_EPOCH_S, MIN_EPOCH_S, TimeAwareGridIndex
from repro.phy.mobility import MobilityModel, RandomWaypoint, WaypointPath
from repro.util.rng import SeededRng


def _linear(x, y, vx, vy):
    return Linear(Position(x, y), (vx, vy))


def test_time_aware_static_items_are_bucketed_and_pruned():
    index = TimeAwareGridIndex(10.0)
    index.insert("near", Static(Position(3.0, 4.0)))
    index.insert("far", Static(Position(500.0, 500.0)))
    candidates = index.query(Position(0.0, 0.0), 10.0, now=0.0)
    assert "near" in candidates
    assert "far" not in candidates


def test_time_aware_mover_is_always_a_candidate_where_it_is():
    index = TimeAwareGridIndex(10.0)
    index.insert("walker", _linear(0.0, 0.0, 2.0, 0.0))
    walker = _linear(0.0, 0.0, 2.0, 0.0)
    for now in (0.0, 3.7, 12.0, 55.5, 123.4):
        here = walker.position_at(now)
        assert "walker" in index.query(here, 1.0, now=now)


def test_time_aware_mover_is_pruned_far_from_its_epoch_cell():
    index = TimeAwareGridIndex(10.0)
    index.insert("walker", _linear(0.0, 0.0, 1.0, 0.0))
    assert "walker" not in index.query(Position(900.0, 900.0), 5.0, now=1.0)


def test_time_aware_rebuckets_across_epoch_boundaries():
    index = TimeAwareGridIndex(10.0)
    index.insert("walker", _linear(0.0, 0.0, 1.0, 0.0))
    assert "walker" in index.query(Position(0.0, 0.0), 5.0, now=0.0)
    first_epoch = index.epoch
    # Much later the walker is far from the origin: the stale bucket must
    # not satisfy the query, and the fresh one must.
    now = 500.0
    assert "walker" not in index.query(Position(0.0, 0.0), 5.0, now=now)
    assert index.epoch > first_epoch
    assert "walker" in index.query(Position(500.0, 0.0), 5.0, now=now)


def test_time_aware_epoch_length_tuned_from_observed_speed():
    index = TimeAwareGridIndex(30.0)
    index.insert("walker", _linear(0.0, 0.0, 1.5, 0.0))
    index.query(Position(0.0, 0.0), 10.0, now=0.0)
    # Half a cell at top speed: 0.5 * 30 / 1.5.
    assert index.epoch_length == pytest.approx(10.0)
    assert index.roaming_count == 0


def test_time_aware_epoch_length_clamps():
    slow = TimeAwareGridIndex(30.0)
    slow.insert("snail", _linear(0.0, 0.0, 1e-6, 0.0))
    slow.query(Position(0.0, 0.0), 10.0, now=0.0)
    assert slow.epoch_length == MAX_EPOCH_S

    fast = TimeAwareGridIndex(30.0)
    fast.insert("rocket", _linear(0.0, 0.0, 1e6, 0.0))
    fast.query(Position(0.0, 0.0), 10.0, now=0.0)
    assert fast.epoch_length == MIN_EPOCH_S


def test_time_aware_fast_mover_gets_coarse_bucket_not_roaming():
    index = TimeAwareGridIndex(10.0)
    index.insert("rocket", _linear(0.0, 0.0, 1000.0, 0.0))
    # Too fast to bound inside one fine cell even at the minimum epoch —
    # but the intra-epoch bound is still finite, so the rocket lands in
    # the coarse second-level grid instead of the O(n) roaming list.
    assert "rocket" in index.query(Position(100.0, 0.0), 5.0, now=0.0)
    assert index.roaming_count == 0
    assert index.coarse_count == 1
    # Far outside the rocket's inflated reach the coarse grid prunes it —
    # the old roaming fallback would have returned it from every query.
    assert "rocket" not in index.query(Position(5e5, 5e5), 0.001, now=0.0)


def test_time_aware_sprinter_does_not_collapse_walker_epoch():
    index = TimeAwareGridIndex(30.0)
    index.insert("walker", _linear(0.0, 0.0, 1.5, 0.0))
    index.insert("sprinter", _linear(0.0, 0.0, 400.0, 0.0))
    index.query(Position(0.0, 0.0), 10.0, now=0.0)
    # Epoch tuning ignores the sprinter (it is coarse-bucketed anyway), so
    # the walker keeps its half-cell epoch: 0.5 * 30 / 1.5.
    assert index.epoch_length == pytest.approx(10.0)
    assert index.coarse_count == 1
    assert index.roaming_count == 0


def test_time_aware_sprinter_is_a_candidate_wherever_it_is():
    index = TimeAwareGridIndex(10.0)
    index.insert("sprinter", _linear(0.0, 0.0, 300.0, 0.0))
    sprinter = _linear(0.0, 0.0, 300.0, 0.0)
    for now in (0.0, 0.2, 1.3, 7.9, 42.0):
        here = sprinter.position_at(now)
        assert "sprinter" in index.query(here, 1.0, now=now), now


def test_time_aware_unknown_model_is_unbounded_hence_roaming():
    class Teleporter(MobilityModel):
        def position_at(self, time):
            return Position(0.0, 0.0)

    index = TimeAwareGridIndex(10.0)
    index.insert("mystery", Teleporter())
    assert "mystery" in index.query(Position(777.0, 777.0), 0.001, now=3.0)
    assert index.roaming_count == 1


def test_time_aware_mixed_population_stays_exact_superset():
    index = TimeAwareGridIndex(25.0)
    models = {
        "static": Static(Position(40.0, 40.0)),
        "walker": _linear(0.0, 0.0, 2.0, 1.0),
        "ferry": WaypointPath([
            (0.0, Position(100.0, 0.0)),
            (50.0, Position(100.0, 80.0)),
        ]),
        "tourist": RandomWaypoint(SeededRng(3), width=120.0, height=120.0,
                                  speed=1.5),
    }
    for name, model in models.items():
        index.insert(name, model)
    probe = SeededRng(17)
    for _ in range(60):
        now = probe.uniform(0.0, 90.0)
        origin = Position(probe.uniform(0.0, 120.0), probe.uniform(0.0, 120.0))
        radius = probe.uniform(5.0, 60.0)
        candidates = index.query(origin, radius, now=now)
        for name, model in models.items():
            if origin.distance_to(model.position_at(now)) <= radius:
                assert name in candidates, (name, now, origin, radius)


def test_time_aware_update_transitions_between_static_and_mobile():
    index = TimeAwareGridIndex(10.0)
    index.insert("a", Static(Position(0.0, 0.0)))
    index.update("a", _linear(50.0, 0.0, 1.0, 0.0))
    assert "a" in index.query(Position(50.0, 0.0), 5.0, now=0.0)
    assert "a" not in index.query(Position(0.0, 0.0), 5.0, now=0.0)
    index.update("a", Static(Position(7.0, 7.0)))
    assert "a" in index.query(Position(7.0, 7.0), 5.0, now=0.0)
    assert index.mover_count == 0


def test_time_aware_remove_before_any_query():
    index = TimeAwareGridIndex(10.0)
    index.insert("ghost", _linear(0.0, 0.0, 1.0, 0.0))
    index.remove("ghost")
    assert len(index) == 0
    assert index.query(Position(0.0, 0.0), 100.0, now=0.0) == []


def test_time_aware_remove_mover_after_query():
    index = TimeAwareGridIndex(10.0)
    index.insert("walker", _linear(0.0, 0.0, 1.0, 0.0))
    index.query(Position(0.0, 0.0), 5.0, now=0.0)
    index.remove("walker")
    assert "walker" not in index
    assert index.query(Position(0.0, 0.0), 100.0, now=0.0) == []


def test_time_aware_double_insert_rejected():
    index = TimeAwareGridIndex(10.0)
    index.insert("a", Static(Position(0.0, 0.0)))
    with pytest.raises(ValueError):
        index.insert("a", _linear(0.0, 0.0, 1.0, 0.0))
    index.insert("b", _linear(0.0, 0.0, 1.0, 0.0))
    with pytest.raises(ValueError):
        index.insert("b", Static(Position(0.0, 0.0)))


def test_time_aware_len_and_contains():
    index = TimeAwareGridIndex(10.0)
    index.insert("s", Static(Position(0.0, 0.0)))
    index.insert("m", _linear(0.0, 0.0, 1.0, 0.0))
    assert len(index) == 2
    assert "s" in index and "m" in index
    assert "nope" not in index
    assert index.mover_count == 1


def test_time_aware_invalid_construction():
    with pytest.raises(ValueError):
        TimeAwareGridIndex(0.0)
    with pytest.raises(ValueError):
        TimeAwareGridIndex(10.0, min_epoch_s=5.0, max_epoch_s=1.0)


def test_time_aware_queries_are_deterministic():
    def run():
        index = TimeAwareGridIndex(20.0)
        index.insert("s1", Static(Position(10.0, 10.0)))
        for i in range(6):
            index.insert(f"m{i}", _linear(float(i * 15), 0.0, 1.0, 0.5))
        out = []
        for step in range(8):
            now = step * 7.5
            out.append(index.query(Position(30.0, 5.0), 25.0, now=now))
        index.remove("m3")
        out.append(index.query(Position(30.0, 5.0), 25.0, now=70.0))
        return out

    assert run() == run()

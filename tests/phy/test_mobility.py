"""Mobility models."""

import math

import pytest

from repro.phy.geometry import Position
from repro.phy.mobility import (
    Linear,
    MobilityModel,
    RandomWaypoint,
    Static,
    WaypointPath,
)
from repro.util.rng import SeededRng


class TestStatic:
    def test_never_moves(self):
        model = Static(Position(5, 5))
        assert model.position_at(0) == Position(5, 5)
        assert model.position_at(1e6) == Position(5, 5)


class TestLinear:
    def test_constant_velocity(self):
        model = Linear(Position(0, 0), velocity=(2.0, -1.0))
        assert model.position_at(3.0) == Position(6, -3)

    def test_start_time_offset(self):
        model = Linear(Position(0, 0), velocity=(1.0, 0.0), start_time=5.0)
        assert model.position_at(2.0) == Position(0, 0)
        assert model.position_at(7.0) == Position(2, 0)


class TestWaypointPath:
    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            WaypointPath([])

    def test_requires_sorted_times(self):
        with pytest.raises(ValueError):
            WaypointPath([(1.0, Position(0, 0)), (0.5, Position(1, 1))])

    def test_holds_before_first_and_after_last(self):
        path = WaypointPath([(1.0, Position(0, 0)), (2.0, Position(10, 0))])
        assert path.position_at(0.0) == Position(0, 0)
        assert path.position_at(100.0) == Position(10, 0)

    def test_interpolates_between_waypoints(self):
        path = WaypointPath([(0.0, Position(0, 0)), (10.0, Position(10, 20))])
        assert path.position_at(5.0) == Position(5, 10)

    def test_zero_duration_segment_jumps(self):
        path = WaypointPath([
            (0.0, Position(0, 0)),
            (1.0, Position(1, 1)),
            (1.0, Position(5, 5)),
        ])
        # At the shared instant the pre-jump position holds; any time after
        # it the node has teleported.
        assert path.position_at(1.0) == Position(1, 1)
        assert path.position_at(1.0 + 1e-9) == Position(5, 5)

    def test_ferry_scenario_timing(self):
        # The Fig 7 ferry: dwell, travel, dwell.
        path = WaypointPath([
            (0.0, Position(10, 0)),
            (1.0, Position(10, 0)),
            (6.0, Position(390, 0)),
        ])
        assert path.position_at(0.5) == Position(10, 0)
        midway = path.position_at(3.5)
        assert 10 < midway.x < 390
        assert path.position_at(6.0) == Position(390, 0)


class TestRandomWaypoint:
    def test_stays_in_arena(self):
        model = RandomWaypoint(SeededRng(1), width=50, height=30, speed=2.0)
        for t in range(0, 500, 7):
            position = model.position_at(float(t))
            assert 0 <= position.x <= 50
            assert 0 <= position.y <= 30

    def test_deterministic_for_seed(self):
        a = RandomWaypoint(SeededRng(2), width=100, height=100, speed=1.5)
        b = RandomWaypoint(SeededRng(2), width=100, height=100, speed=1.5)
        for t in (0.0, 10.0, 55.5, 200.0):
            assert a.position_at(t) == b.position_at(t)

    def test_position_at_is_pure(self):
        model = RandomWaypoint(SeededRng(3), width=100, height=100, speed=1.0)
        later = model.position_at(300.0)
        earlier = model.position_at(10.0)
        assert model.position_at(300.0) == later  # querying out of order is fine
        assert model.position_at(10.0) == earlier

    def test_speed_limits_displacement(self):
        speed = 3.0
        model = RandomWaypoint(SeededRng(4), width=1000, height=1000, speed=speed)
        previous = model.position_at(0.0)
        for t in range(1, 100):
            current = model.position_at(float(t))
            assert previous.distance_to(current) <= speed * 1.0 + 1e-9
            previous = current

    def test_pause_dwells_at_waypoints(self):
        model = RandomWaypoint(SeededRng(5), width=10, height=10, speed=100.0,
                               pause=5.0, start=Position(5, 5))
        # With enormous speed and long pauses, the node is almost always
        # dwelling exactly at some waypoint.
        assert model.position_at(1.0) == Position(5, 5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypoint(SeededRng(0), width=0, height=10, speed=1)
        with pytest.raises(ValueError):
            RandomWaypoint(SeededRng(0), width=10, height=10, speed=0)
        with pytest.raises(ValueError):
            RandomWaypoint(SeededRng(0), width=10, height=10, speed=1, pause=-1)


class TestBisectedWaypointLookup:
    """The bisect rewrite must keep the linear scan's exact semantics."""

    def test_exact_waypoint_times_return_waypoint_positions(self):
        waypoints = [(float(t), Position(float(t * 3), float(-t))) for t in range(12)]
        path = WaypointPath(waypoints)
        for t, position in waypoints:
            assert path.position_at(t) == position

    def test_many_waypoints_interpolate_between_the_right_pair(self):
        waypoints = [(float(t), Position(float(t), 0.0)) for t in range(100)]
        path = WaypointPath(waypoints)
        assert path.position_at(41.25) == Position(41.25, 0.0)
        assert path.position_at(0.5) == Position(0.5, 0.0)
        assert path.position_at(98.75) == Position(98.75, 0.0)

    def test_single_waypoint_path_is_static(self):
        path = WaypointPath([(5.0, Position(2.0, 3.0))])
        for t in (0.0, 5.0, 500.0):
            assert path.position_at(t) == Position(2.0, 3.0)


class TestMaxDisplacement:
    def test_base_model_is_unbounded(self):
        assert MobilityModel().max_displacement(0.0, 1.0) == math.inf

    def test_static_never_displaces(self):
        model = Static(Position(1.0, 2.0))
        assert model.max_displacement(0.0, 1e6) == 0.0

    def test_linear_is_speed_times_duration(self):
        model = Linear(Position(0.0, 0.0), velocity=(3.0, 4.0))
        assert model.max_displacement(2.0, 5.0) == pytest.approx(15.0)

    def test_linear_clamps_to_start_time(self):
        model = Linear(Position(0.0, 0.0), velocity=(1.0, 0.0), start_time=10.0)
        assert model.max_displacement(0.0, 10.0) == 0.0
        assert model.max_displacement(8.0, 12.0) == pytest.approx(2.0)

    def test_empty_or_reversed_window_is_zero(self):
        model = Linear(Position(0.0, 0.0), velocity=(5.0, 0.0))
        assert model.max_displacement(4.0, 4.0) == 0.0
        assert model.max_displacement(9.0, 2.0) == 0.0

    def test_waypoint_path_uses_along_path_length(self):
        path = WaypointPath([
            (0.0, Position(0.0, 0.0)),
            (10.0, Position(30.0, 40.0)),  # 50 m leg at 5 m/s
        ])
        assert path.max_displacement(0.0, 10.0) == pytest.approx(50.0)
        assert path.max_displacement(0.0, 5.0) == pytest.approx(25.0)
        assert path.max_displacement(10.0, 100.0) == 0.0
        assert path.max_displacement(-5.0, 0.0) == 0.0

    def test_waypoint_path_counts_zero_duration_jumps(self):
        path = WaypointPath([
            (0.0, Position(0.0, 0.0)),
            (1.0, Position(0.0, 0.0)),
            (1.0, Position(10.0, 0.0)),
        ])
        assert path.max_displacement(0.5, 2.0) == pytest.approx(10.0)

    def test_random_waypoint_uses_speed_cap(self):
        model = RandomWaypoint(SeededRng(7), width=1000.0, height=1000.0,
                               speed=3.0)
        assert model.max_displacement(0.0, 4.0) == pytest.approx(12.0)

    def test_random_waypoint_caps_at_arena_diagonal(self):
        model = RandomWaypoint(SeededRng(7), width=30.0, height=40.0, speed=3.0)
        assert model.max_displacement(0.0, 1e6) == pytest.approx(50.0)

    @pytest.mark.parametrize("factory", [
        lambda: Static(Position(3.0, 4.0)),
        lambda: Linear(Position(0.0, 0.0), velocity=(2.0, -1.5), start_time=3.0),
        lambda: WaypointPath([
            (0.0, Position(0.0, 0.0)),
            (4.0, Position(20.0, 0.0)),
            (4.0, Position(20.0, 30.0)),
            (9.0, Position(-10.0, 30.0)),
        ]),
        lambda: RandomWaypoint(SeededRng(11), width=200.0, height=150.0,
                               speed=2.5, pause=1.0),
    ])
    def test_bound_actually_bounds_observed_displacement(self, factory):
        model = factory()
        probe = SeededRng(99)
        for _ in range(200):
            t0 = probe.uniform(0.0, 40.0)
            t1 = t0 + probe.uniform(0.0, 25.0)
            bound = model.max_displacement(t0, t1)
            a = model.position_at(probe.uniform(t0, t1))
            b = model.position_at(probe.uniform(t0, t1))
            assert a.distance_to(b) <= bound + 1e-9

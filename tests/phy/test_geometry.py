"""Planar geometry."""

import pytest

from repro.phy.geometry import ORIGIN, Position


def test_distance_euclidean():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


def test_distance_symmetry():
    a, b = Position(1, 2), Position(-4, 7)
    assert a.distance_to(b) == b.distance_to(a)


def test_distance_to_self_is_zero():
    point = Position(2.5, -1.5)
    assert point.distance_to(point) == 0.0


def test_translated():
    assert Position(1, 1).translated(2, -3) == Position(3, -2)


def test_towards_moves_correct_distance():
    start = Position(0, 0)
    moved = start.towards(Position(10, 0), 4.0)
    assert moved == Position(4, 0)


def test_towards_same_point_is_identity():
    point = Position(5, 5)
    assert point.towards(point, 100.0) == point


def test_towards_can_overshoot():
    moved = Position(0, 0).towards(Position(1, 0), 5.0)
    assert moved.x == pytest.approx(5.0)


def test_lerp_endpoints_and_midpoint():
    a, b = Position(0, 0), Position(10, 20)
    assert a.lerp(b, 0.0) == a
    assert a.lerp(b, 1.0) == b
    assert a.lerp(b, 0.5) == Position(5, 10)


def test_position_is_iterable():
    x, y = Position(3, 7)
    assert (x, y) == (3, 7)


def test_positions_are_hashable_values():
    assert Position(1, 2) == Position(1, 2)
    assert len({Position(1, 2), Position(1, 2), Position(3, 4)}) == 2


def test_origin_constant():
    assert ORIGIN == Position(0.0, 0.0)

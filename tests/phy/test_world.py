"""World node registry."""

import pytest

from repro.phy.geometry import Position
from repro.phy.mobility import Linear, Static
from repro.phy.world import MirrorNodeError, World


def test_add_and_lookup(world):
    node = world.add_node("a", position=Position(1, 2))
    assert world.node("a") is node
    assert "a" in world
    assert len(world) == 1


def test_duplicate_names_rejected(world):
    world.add_node("a", position=Position(0, 0))
    with pytest.raises(ValueError):
        world.add_node("a", position=Position(1, 1))


def test_position_or_mobility_required(world):
    with pytest.raises(ValueError):
        world.add_node("x")
    with pytest.raises(ValueError):
        world.add_node("y", position=Position(0, 0), mobility=Static(Position(1, 1)))


def test_remove_node(world):
    world.add_node("a", position=Position(0, 0))
    world.remove_node("a")
    assert "a" not in world
    with pytest.raises(KeyError):
        world.remove_node("a")


def test_moving_node_position_follows_clock(kernel, world):
    node = world.add_node("mover", mobility=Linear(Position(0, 0), (1.0, 0.0)))
    assert node.position == Position(0, 0)
    kernel.run_until(5.0)
    assert node.position == Position(5, 0)


def test_distance_between_nodes(kernel, world):
    a = world.add_node("a", position=Position(0, 0))
    b = world.add_node("b", mobility=Linear(Position(3, 4), (1.0, 0.0)))
    assert a.distance_to(b) == 5.0
    kernel.run_until(3.0)
    assert a.distance_to(b) == pytest.approx((36 + 16) ** 0.5)


def test_move_to_teleports_and_pins(kernel, world):
    node = world.add_node("mover", mobility=Linear(Position(0, 0), (1.0, 0.0)))
    kernel.run_until(2.0)
    node.move_to(Position(100, 100))
    kernel.run_until(10.0)
    assert node.position == Position(100, 100)


def test_set_mobility_switches_model(kernel, world):
    node = world.add_node("n", position=Position(0, 0))
    node.set_mobility(Linear(Position(0, 0), (2.0, 0.0), start_time=kernel.now))
    kernel.run_until(3.0)
    assert node.position == Position(6, 0)


def test_nodes_within_radius_sorted_by_name(world):
    center = world.add_node("center", position=Position(0, 0))
    world.add_node("far", position=Position(100, 0))
    world.add_node("b-near", position=Position(3, 0))
    world.add_node("a-near", position=Position(0, 4))
    names = [node.name for node in world.nodes_within(center, 10.0)]
    assert names == ["a-near", "b-near"]


def test_nodes_within_excludes_center(world):
    center = world.add_node("center", position=Position(0, 0))
    assert world.nodes_within(center, 10.0) == []


def test_iteration(world):
    world.add_node("a", position=Position(0, 0))
    world.add_node("b", position=Position(1, 1))
    assert sorted(node.name for node in world) == ["a", "b"]


def test_mirror_node_rejects_direct_mutation(kernel, world):
    node = world.add_mirror_node("m", Static(Position(1.0, 2.0)), owner_shard=3)
    assert node.is_mirror
    assert node.owner_shard == 3
    with pytest.raises(MirrorNodeError):
        node.move_to(Position(5.0, 5.0))
    with pytest.raises(MirrorNodeError):
        node.set_mobility(Linear(Position(0, 0), (1.0, 0.0)))
    # The node stayed where it was.
    assert node.position == Position(1.0, 2.0)


def test_mirror_node_mutable_inside_boundary_exchange(kernel, world):
    node = world.add_mirror_node("m", Static(Position(0.0, 0.0)), owner_shard=0)
    with world.boundary_exchange():
        node.move_to(Position(3.0, 4.0))
    assert node.position == Position(3.0, 4.0)
    # The window closes again afterwards.
    with pytest.raises(MirrorNodeError):
        node.move_to(Position(9.0, 9.0))


def test_boundary_exchange_restores_state_on_error(kernel, world):
    node = world.add_mirror_node("m", Static(Position(0.0, 0.0)), owner_shard=0)
    with pytest.raises(RuntimeError, match="boom"):
        with world.boundary_exchange():
            raise RuntimeError("boom")
    with pytest.raises(MirrorNodeError):
        node.move_to(Position(1.0, 1.0))


def test_owned_nodes_unaffected_by_mirror_guard(kernel, world):
    node = world.add_node("owned", position=Position(0.0, 0.0))
    node.move_to(Position(2.0, 2.0))
    assert node.position == Position(2.0, 2.0)
    assert not node.is_mirror
    assert node.owner_shard is None

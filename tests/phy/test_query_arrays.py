"""query_arrays == query under seeded churn, on both index flavors.

The :class:`~repro.phy.index.CandidateArrays` contract: for a
:class:`UniformGridIndex`, ``unpositioned + items`` equals the
:meth:`query` list exactly and ``xs/ys`` are the inserted coordinates;
for a :class:`TimeAwareGridIndex`, ``items`` equals :meth:`query`'s list
(``unpositioned`` always empty) and ``xs/ys`` are exactly the floats
``position_at(now)`` returns per item — the invariant the vectorized
medium's bit-identical distance kernel rests on.  Churn (insert, remove,
same-cell and cross-cell moves) is driven by a seeded RNG so failures
replay.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.phy.geometry import Position
from repro.phy.index import TimeAwareGridIndex, UniformGridIndex
from repro.phy.mobility import Linear, RandomWaypoint, Static, WaypointPath
from repro.util.rng import SeededRng


def _assert_arrays_match_query(index, origin, radius, now):
    arrays = index.query_arrays(origin, radius, now)
    assert arrays.unpositioned + arrays.items == index.query(origin, radius, now)
    assert len(arrays.xs) == len(arrays.items) == len(arrays.ys)
    assert len(arrays) == len(arrays.items) + len(arrays.unpositioned)
    return arrays


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), steps=st.integers(10, 60))
def test_uniform_grid_arrays_track_churn(seed, steps):
    rng = SeededRng(seed)
    index = UniformGridIndex(cell_size=10.0)
    positions = {}
    counter = 0
    for _ in range(steps):
        move = rng.uniform(0.0, 1.0)
        if move < 0.45 or not positions:
            # Insert: mostly bucketed, sometimes roaming (position None).
            item = f"i{counter}"
            counter += 1
            if rng.uniform(0.0, 1.0) < 0.2:
                index.insert(item, None)
                positions[item] = None
            else:
                p = Position(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
                index.insert(item, p)
                positions[item] = p
        elif move < 0.65:
            item = rng.choice(sorted(positions))
            index.remove(item)
            del positions[item]
        else:
            item = rng.choice(sorted(positions))
            old = positions[item]
            if old is not None and rng.uniform(0.0, 1.0) < 0.5:
                # Same-cell nudge: the stored coordinates must still track.
                p = Position(
                    (old.x // 10.0) * 10.0 + rng.uniform(0.1, 9.9),
                    (old.y // 10.0) * 10.0 + rng.uniform(0.1, 9.9),
                )
            else:
                p = Position(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
            index.update(item, p)
            positions[item] = p
        origin = Position(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
        radius = rng.uniform(5.0, 40.0)
        arrays = _assert_arrays_match_query(index, origin, radius, 0.0)
        for item, x, y in zip(arrays.items, arrays.xs, arrays.ys):
            stored = positions[item]
            assert (x, y) == (stored.x, stored.y)
        for item in arrays.unpositioned:
            assert positions[item] is None


def _mixed_population(rng: SeededRng, count: int):
    """Static / RandomWaypoint / Linear / WaypointPath mix, seeded."""
    models = []
    for i in range(count):
        flavor = i % 4
        start = Position(rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0))
        if flavor == 0:
            models.append(Static(start))
        elif flavor == 1:
            models.append(
                RandomWaypoint(
                    rng.child("walk", str(i)),
                    width=200.0,
                    height=200.0,
                    speed=rng.uniform(0.5, 3.0),
                )
            )
        elif flavor == 2:
            models.append(
                Linear(start, (rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)))
            )
        else:
            models.append(
                WaypointPath(
                    [
                        (0.0, start),
                        (30.0, Position(rng.uniform(0.0, 200.0),
                                        rng.uniform(0.0, 200.0))),
                    ]
                )
            )
    return models


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_time_aware_arrays_match_query_across_times(seed):
    rng = SeededRng(seed)
    index = TimeAwareGridIndex(cell_size=25.0)
    models = _mixed_population(rng, 24)
    for i, model in enumerate(models):
        index.insert(f"n{i}", model)
    mobility = {f"n{i}": m for i, m in enumerate(models)}
    for _ in range(12):
        now = rng.uniform(0.0, 60.0)
        origin = Position(rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0))
        radius = rng.uniform(10.0, 80.0)
        arrays = _assert_arrays_match_query(index, origin, radius, now)
        assert arrays.unpositioned == []  # this index knows every model
        for item, x, y in zip(arrays.items, arrays.xs, arrays.ys):
            exact = mobility[item].position_at(now)
            # Bit-identical, not approximately equal: these floats feed the
            # vectorized distance kernel.
            assert (x, y) == (exact.x, exact.y)


def test_time_aware_memo_invalidates_on_mutation():
    """The per-(now, version) mover-position memo must not serve stale
    coordinates after an insert/remove at the same timestamp."""
    index = TimeAwareGridIndex(cell_size=25.0)
    walk = Linear(Position(10.0, 10.0), (1.0, 0.0))
    index.insert("a", walk)
    origin = Position(10.0, 10.0)
    arrays = index.query_arrays(origin, 50.0, now=5.0)
    assert arrays.items == ["a"]
    assert (arrays.xs[0], arrays.ys[0]) == (15.0, 10.0)
    # Mutate at the same `now`: the memoized position of "a" is still
    # valid, but the new item must appear with its own exact position.
    index.insert("b", Linear(Position(20.0, 10.0), (0.0, 1.0)))
    arrays = index.query_arrays(origin, 50.0, now=5.0)
    got = dict(zip(arrays.items, zip(arrays.xs, arrays.ys)))
    assert got == {"a": (15.0, 10.0), "b": (20.0, 15.0)}
    index.remove("a")
    arrays = index.query_arrays(origin, 50.0, now=5.0)
    assert arrays.items == ["b"]
    # And a later timestamp re-resolves every mover.
    arrays = index.query_arrays(origin, 50.0, now=6.0)
    assert (arrays.xs[0], arrays.ys[0]) == (20.0, 16.0)


def test_uniform_grid_position_of_reports_stored_coordinates():
    index = UniformGridIndex(cell_size=10.0)
    index.insert("s", Position(3.0, 4.0))
    index.insert("r", None)
    assert index.position_of("s") == Position(3.0, 4.0)
    assert index.position_of("r") is None
    index.update("s", Position(3.5, 4.5))  # same cell: stored floats move
    assert index.position_of("s") == Position(3.5, 4.5)

"""Indexed vs linear equality under mobility churn, property-style.

Two mirrored universes — one with the time-aware spatial index, one on the
exhaustive linear scan — are driven through the same randomized (but
seeded) sequence of node adds, removes, mobility swaps, teleports, clock
advances, beacons, and range queries.  At every step the indexed answers
must equal the linear ones *exactly*: same ``nodes_within`` lists, same
reachable sets, same delivered frames.  Clock advances are long enough to
cross many epoch boundaries, so rebucketing (and the fast-mover roaming
fallback) is exercised throughout.
"""

from __future__ import annotations

from repro.phy.geometry import Position
from repro.phy.mobility import Linear, RandomWaypoint, Static, WaypointPath
from repro.phy.world import World
from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.medium import Medium
from repro.sim.kernel import Kernel
from repro.util.rng import SeededRng

ARENA_M = 300.0


def _make_spec(rng: SeededRng, fast_allowed: bool = True):
    """A picklable-ish description of a mobility model.

    Specs (not model instances) are shared between the mirrored universes:
    each universe builds its *own* model from the spec, so lazily generated
    trajectories (RandomWaypoint) never leak state across universes.
    """
    kinds = ["static", "linear", "waypoint", "randomwaypoint"]
    if fast_allowed:
        kinds.append("sprinter")  # fast enough to trip the roaming fallback
    kind = rng.choice(kinds)
    if kind == "static":
        return ("static", rng.uniform(0.0, ARENA_M), rng.uniform(0.0, ARENA_M))
    if kind == "linear":
        return (
            "linear",
            rng.uniform(0.0, ARENA_M),
            rng.uniform(0.0, ARENA_M),
            rng.uniform(-2.5, 2.5),
            rng.uniform(-2.5, 2.5),
        )
    if kind == "sprinter":
        return (
            "linear",
            rng.uniform(0.0, ARENA_M),
            rng.uniform(0.0, ARENA_M),
            rng.uniform(150.0, 400.0),
            rng.uniform(-400.0, 400.0),
        )
    if kind == "waypoint":
        waypoints = []
        t = rng.uniform(0.0, 30.0)
        for _ in range(rng.randint(2, 5)):
            waypoints.append(
                (t, (rng.uniform(0.0, ARENA_M), rng.uniform(0.0, ARENA_M)))
            )
            t += rng.uniform(0.0, 40.0)
        return ("waypoint", tuple(waypoints))
    return (
        "randomwaypoint",
        rng.randint(0, 10**9),
        rng.uniform(0.8, 3.0),
        rng.uniform(0.0, 4.0),
    )


def _build_model(spec):
    kind = spec[0]
    if kind == "static":
        return Static(Position(spec[1], spec[2]))
    if kind == "linear":
        return Linear(Position(spec[1], spec[2]), (spec[3], spec[4]))
    if kind == "waypoint":
        return WaypointPath([(t, Position(x, y)) for t, (x, y) in spec[1]])
    _, seed, speed, pause = spec
    return RandomWaypoint(SeededRng(seed), width=ARENA_M, height=ARENA_M,
                          speed=speed, pause=pause)


def _brute_force_within(world: World, center, radius: float):
    origin = center.position
    return sorted(
        node.name
        for node in world
        if node is not center and origin.distance_to(node.position) <= radius
    )


def test_world_nodes_within_identical_with_index_on_and_off_under_churn():
    kernel_on = Kernel(seed=5)
    kernel_off = Kernel(seed=5)
    world_on = World(kernel_on)
    world_off = World(kernel_off, use_spatial_index=False)
    ops = SeededRng(2024)
    names = []
    next_id = [0]

    def add_node():
        spec = _make_spec(ops)
        name = f"n{next_id[0]}"
        next_id[0] += 1
        world_on.add_node(name, mobility=_build_model(spec))
        world_off.add_node(name, mobility=_build_model(spec))
        names.append(name)

    for _ in range(20):
        add_node()

    queries = 0
    for _ in range(150):
        op = ops.choice(
            ("add", "remove", "retarget", "teleport",
             "advance", "advance", "query", "query", "query")
        )
        if op == "add":
            add_node()
        elif op == "remove" and len(names) > 4:
            name = ops.choice(names)
            names.remove(name)
            world_on.remove_node(name)
            world_off.remove_node(name)
        elif op == "retarget" and names:
            name = ops.choice(names)
            spec = _make_spec(ops)
            world_on.node(name).set_mobility(_build_model(spec))
            world_off.node(name).set_mobility(_build_model(spec))
        elif op == "teleport" and names:
            name = ops.choice(names)
            x = ops.uniform(0.0, ARENA_M)
            y = ops.uniform(0.0, ARENA_M)
            world_on.node(name).move_to(Position(x, y))
            world_off.node(name).move_to(Position(x, y))
        elif op == "advance":
            dt = ops.uniform(0.5, 20.0)  # crosses epochs (≤ 60 s each)
            kernel_on.run_until(kernel_on.now + dt)
            kernel_off.run_until(kernel_off.now + dt)
        elif op == "query" and names:
            center = ops.choice(names)
            radius = ops.choice((10.0, 40.0, 90.0, 170.0))
            found_on = [
                node.name
                for node in world_on.nodes_within(world_on.node(center), radius)
            ]
            found_off = [
                node.name
                for node in world_off.nodes_within(world_off.node(center), radius)
            ]
            assert found_on == found_off
            # And both equal the from-scratch exhaustive answer.
            assert found_on == _brute_force_within(
                world_on, world_on.node(center), radius
            )
            queries += 1
    assert queries > 20  # the op mix actually exercised the comparison


def _mirrored_stack(use_spatial_index: bool, specs):
    kernel = Kernel(seed=3)
    world = World(kernel)
    medium = Medium(kernel, world, use_spatial_index=use_spatial_index)
    radios = []
    heard = []
    for i, spec in enumerate(specs):
        node = world.add_node(f"d{i}", mobility=_build_model(spec))
        device = Device(kernel, node)
        radio = device.add_radio(BleRadio(device, medium))
        radio.enable()
        radio.start_scanning(
            lambda payload, mac, distance, me=i: heard.append(
                (me, payload, round(distance, 9))
            )
        )
        radios.append(radio)
    return kernel, world, medium, radios, heard


def test_medium_delivery_identical_with_index_on_and_off_under_churn():
    spec_rng = SeededRng(77)
    specs = [_make_spec(spec_rng) for _ in range(40)]
    (kernel_a, world_a, medium_a, radios_a, heard_a) = _mirrored_stack(
        use_spatial_index=False, specs=specs
    )
    (kernel_b, world_b, medium_b, radios_b, heard_b) = _mirrored_stack(
        use_spatial_index=True, specs=specs
    )
    ops = SeededRng(31337)
    for step in range(120):
        op = ops.choice(("advance", "beacon", "beacon", "retarget", "teleport",
                         "reach"))
        if op == "advance":
            dt = ops.uniform(1.0, 15.0)
            kernel_a.run_until(kernel_a.now + dt)
            kernel_b.run_until(kernel_b.now + dt)
        elif op == "beacon":
            sender = ops.randint(0, len(specs) - 1)
            payload = b"s%03d" % step
            radios_a[sender].advertise_once(payload)
            radios_b[sender].advertise_once(payload)
        elif op == "retarget":
            target = ops.randint(0, len(specs) - 1)
            spec = _make_spec(ops)
            world_a.node(f"d{target}").set_mobility(_build_model(spec))
            world_b.node(f"d{target}").set_mobility(_build_model(spec))
        elif op == "teleport":
            target = ops.randint(0, len(specs) - 1)
            x = ops.uniform(0.0, ARENA_M)
            y = ops.uniform(0.0, ARENA_M)
            world_a.node(f"d{target}").move_to(Position(x, y))
            world_b.node(f"d{target}").move_to(Position(x, y))
        else:  # reach: neighbor sets must agree at this instant
            probe = ops.randint(0, len(specs) - 1)
            reach_a = [r.device.name
                       for r in medium_a.reachable_from(radios_a[probe])]
            reach_b = [r.device.name
                       for r in medium_b.reachable_from(radios_b[probe])]
            assert reach_a == reach_b
    # Drain in-flight deliveries, then the full logs must be identical.
    kernel_a.run_until(kernel_a.now + 5.0)
    kernel_b.run_until(kernel_b.now + 5.0)
    assert heard_a == heard_b
    assert heard_a  # the scenario actually delivered frames
    assert (medium_a.frames_sent, medium_a.frames_delivered,
            medium_a.frames_dropped) == (
        medium_b.frames_sent, medium_b.frames_delivered,
        medium_b.frames_dropped)

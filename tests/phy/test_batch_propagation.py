"""Property suite: batch propagation methods == scalar, bit for bit.

The batch contract (:mod:`repro.phy.propagation` module docstring) defines
``delivery_probabilities`` / ``in_range_mask`` as the elementwise
application of their scalar twins — exact equality, not approximate.
These properties hammer that definition for every model, under both the
numpy and pure-Python backends, with the distance strategies biased
toward the float edges where vectorized rewrites typically diverge
(cutoff boundaries, narrow SoftDisk ramps, LogDistance's 1% cutoff where
``in_range`` deliberately disagrees with ``probability > 0``).
"""

from __future__ import annotations

import math
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.phy.propagation import (
    LogDistance,
    PropagationModel,
    SoftDisk,
    UnitDisk,
)
from repro.util import array

finite = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


def _around(r: float):
    """Distances clustered around a cutoff at ``r``: the exact boundary,
    its neighboring ulps, and ordinary points on both sides."""
    return st.sampled_from(
        [
            0.0,
            r,
            math.nextafter(r, 0.0),
            math.nextafter(r, math.inf),
            r * 0.5,
            r * 1.5,
            r * 2.0,
        ]
    )


@contextmanager
def _python_backend():
    """Force the pure-Python fallback for the duration of the block."""
    saved = array.numpy
    array.numpy = None
    try:
        yield
    finally:
        array.numpy = saved


def _assert_batch_matches_scalar(model: PropagationModel, distances):
    """Batch == scalar elementwise, under the active backend *and* the
    pure-Python fallback (the two must also agree with each other)."""
    scalar_ps = [model.delivery_probability(d) for d in distances]
    scalar_mask = [model.in_range(d) for d in distances]
    probabilities = model.delivery_probabilities(distances)
    mask = model.in_range_mask(distances)
    assert [float(p) for p in probabilities] == scalar_ps
    assert [bool(hit) for hit in mask] == scalar_mask
    with _python_backend():
        assert [
            float(p) for p in model.delivery_probabilities(distances)
        ] == scalar_ps
        assert [bool(h) for h in model.in_range_mask(distances)] == scalar_mask


@settings(max_examples=100, deadline=None)
@given(
    radius=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
    data=st.data(),
)
def test_unit_disk_batch_matches_scalar(radius, data):
    distances = data.draw(
        st.lists(st.one_of(finite, _around(radius)), max_size=30)
    )
    _assert_batch_matches_scalar(UnitDisk(radius), distances)


@settings(max_examples=100, deadline=None)
@given(
    inner=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    width=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    data=st.data(),
)
def test_soft_disk_batch_matches_scalar(inner, width, data):
    # width drives the grey-zone ramp; width == 0 is the degenerate
    # inner == outer disk whose ramp branch must never be reached.
    model = SoftDisk(inner, inner + width)
    distances = data.draw(
        st.lists(
            st.one_of(finite, _around(model.inner), _around(model.outer)),
            max_size=30,
        )
    )
    _assert_batch_matches_scalar(model, distances)


@settings(max_examples=60, deadline=None)
@given(
    reference=st.floats(min_value=1e-2, max_value=1e3, allow_nan=False),
    exponent=st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
    data=st.data(),
)
def test_log_distance_batch_matches_scalar(reference, exponent, data):
    model = LogDistance(reference, exponent)
    distances = data.draw(
        st.lists(st.one_of(finite, _around(reference)), max_size=30)
    )
    _assert_batch_matches_scalar(model, distances)


def test_log_distance_survives_the_float64_edges():
    """A subnormal distance can underflow distance/reference to exactly
    0.0 (log10 domain error), and a huge one can overflow 10**x — both
    must resolve to the logistic limits, not raise."""
    model = LogDistance(1e3, 6.0)
    assert model.delivery_probability(5e-324) == 1.0
    assert model.delivery_probabilities([5e-324]) == [1.0]
    assert model.in_range(5e-324) is True
    huge = 1.7976931348623157e308
    assert model.delivery_probability(huge) == 0.0
    assert model.in_range(huge) is False


def test_log_distance_mask_follows_the_one_percent_cutoff():
    """LogDistance.in_range cuts off at 1% delivery, so its mask must
    disagree with ``probability > 0`` in the tail — the case that proves
    in_range_mask delegates to the scalar predicate, not to the
    probabilities."""
    model = LogDistance(reference_range=10.0, exponent=3.0)
    # Far enough out that 0 < p < 0.01: probability positive, out of range.
    tail = 10.0 * (100.0 ** (1.0 / 3.0)) * 1.5
    p = model.delivery_probability(tail)
    assert 0.0 < p < 0.01
    assert model.in_range(tail) is False
    [masked] = model.in_range_mask([tail])
    assert bool(masked) is False
    [batched] = model.delivery_probabilities([tail])
    assert batched == p


def test_soft_disk_mask_survives_the_ramp_rounding_to_zero():
    """One ulp below ``outer`` the ramp can round to exactly 0.0: scalar
    in_range is then False even though the distance is < outer.  The mask
    must follow the probabilities, not the geometric comparison."""
    model = SoftDisk(inner=1e-3, outer=1e-3 + 1000.0)
    boundary = math.nextafter(model.outer, 0.0)
    if model.delivery_probability(boundary) == 0.0:
        assert model.in_range(boundary) is False
        [masked] = model.in_range_mask([boundary])
        assert bool(masked) is False


def test_default_batch_methods_serve_scalar_only_models():
    """A third-party model overriding only the scalar surface inherits
    correct batch behaviour from the PropagationModel defaults."""

    class Steps(PropagationModel):
        def delivery_probability(self, distance: float) -> float:
            return 1.0 if distance < 5.0 else (0.5 if distance < 10.0 else 0.0)

    model = Steps()
    distances = [0.0, 4.999, 5.0, 7.5, 10.0, 20.0]
    for use_fallback in (False, True):
        ctx = _python_backend() if use_fallback else _noop()
        with ctx:
            assert model.delivery_probabilities(distances) == [
                1.0, 1.0, 0.5, 0.5, 0.0, 0.0,
            ]
            assert model.in_range_mask(distances) == [
                True, True, True, True, False, False,
            ]


@contextmanager
def _noop():
    yield

"""Energy meter: piecewise-constant integration."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.meter import EnergyMeter
from repro.sim.kernel import Kernel


def test_no_draw_no_charge(kernel):
    meter = EnergyMeter(kernel)
    kernel.run_until(100.0)
    assert meter.total_charge_mas() == 0.0


def test_constant_draw_integrates_linearly(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("radio", 10.0)
    kernel.run_until(5.0)
    assert meter.total_charge_mas() == pytest.approx(50.0)


def test_draws_sum_across_components(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("a", 10.0)
    meter.set_draw("b", 20.0)
    assert meter.current_ma == 30.0
    kernel.run_until(2.0)
    assert meter.total_charge_mas() == pytest.approx(60.0)


def test_set_draw_zero_removes_component(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("a", 10.0)
    kernel.run_until(1.0)
    meter.set_draw("a", 0.0)
    kernel.run_until(10.0)
    assert meter.total_charge_mas() == pytest.approx(10.0)
    assert meter.active_components() == {}


def test_draw_token_release(kernel):
    meter = EnergyMeter(kernel)
    token = meter.draw("op", 100.0)
    kernel.run_until(0.5)
    token.release()
    token.release()  # idempotent
    kernel.run_until(10.0)
    assert meter.total_charge_mas() == pytest.approx(50.0)


def test_draw_token_as_context_manager(kernel):
    meter = EnergyMeter(kernel)
    with meter.draw("op", 10.0):
        kernel.run_until(1.0)
    kernel.run_until(5.0)
    assert meter.total_charge_mas() == pytest.approx(10.0)


def test_duplicate_component_rejected(kernel):
    meter = EnergyMeter(kernel)
    meter.draw("op", 1.0)
    with pytest.raises(ValueError):
        meter.draw("op", 2.0)


def test_negative_draw_rejected(kernel):
    meter = EnergyMeter(kernel)
    with pytest.raises(ValueError):
        meter.set_draw("x", -1.0)


def test_timed_draw_auto_releases(kernel):
    meter = EnergyMeter(kernel)
    meter.timed_draw("pulse", 183.3, 0.04)
    kernel.run_until(1.0)
    assert meter.total_charge_mas() == pytest.approx(183.3 * 0.04)
    assert meter.current_ma == 0.0


def test_snapshot_windowed_average(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("base", 5.0)
    kernel.run_until(10.0)
    snapshot = meter.snapshot()
    meter.set_draw("extra", 15.0)
    kernel.run_until(20.0)
    assert snapshot.elapsed() == pytest.approx(10.0)
    assert snapshot.charge_since() == pytest.approx(200.0)
    assert snapshot.average_ma() == pytest.approx(20.0)
    assert snapshot.average_ma(relative_to_floor=5.0) == pytest.approx(15.0)


def test_peak_tracking(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("a", 10.0)
    meter.timed_draw("spike", 90.0, 0.1)
    kernel.run_until(1.0)
    assert meter.peak_ma == pytest.approx(100.0)
    meter.reset_peak()
    assert meter.peak_ma == pytest.approx(10.0)


def test_average_ma_at_zero_elapsed_is_current(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("x", 7.0)
    snapshot = meter.snapshot()
    assert snapshot.average_ma() == pytest.approx(7.0)


@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=10),
                          st.floats(min_value=0, max_value=50)),
                min_size=1, max_size=20))
def test_property_charge_equals_sum_of_segments(segments):
    kernel = Kernel(seed=0)
    meter = EnergyMeter(kernel)
    expected = 0.0
    for duration, draw in segments:
        meter.set_draw("only", draw)
        start = kernel.now
        kernel.run_until(start + duration)
        expected += draw * duration
    assert meter.total_charge_mas() == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_property_charge_is_monotonic(draws):
    kernel = Kernel(seed=0)
    meter = EnergyMeter(kernel)
    last = 0.0
    for index, draw in enumerate(draws):
        meter.set_draw("c", draw)
        kernel.run_until(kernel.now + 1.0)
        charge = meter.total_charge_mas()
        assert charge >= last - 1e-12
        last = charge


# -- the redesigned average_ma surface ----------------------------------------


def test_average_ma_snapshot_form(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("base", 5.0)
    kernel.run_until(10.0)
    snapshot = meter.snapshot()
    meter.set_draw("extra", 15.0)
    kernel.run_until(20.0)
    assert meter.average_ma(since=snapshot) == pytest.approx(20.0)
    assert meter.average_ma(since=snapshot, floor_ma=5.0) == pytest.approx(15.0)


def test_average_ma_zero_window_degenerates_to_current(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("x", 7.0)
    snapshot = meter.snapshot()
    assert meter.average_ma(since=snapshot, floor_ma=2.0) == pytest.approx(5.0)


def test_average_ma_two_float_form_is_gone(kernel):
    # The deprecation cycle for average_ma(since_time, since_charge_mas)
    # completed: the keyword-only signature rejects the old positional form
    # outright (and API001 lints any reintroduction).
    meter = EnergyMeter(kernel)
    meter.set_draw("x", 4.0)
    kernel.run_until(5.0)
    with pytest.raises(TypeError):
        meter.average_ma(0.0, 0.0)


def test_average_ma_rejects_legacy_kwargs_and_missing_since(kernel):
    meter = EnergyMeter(kernel)
    snapshot = meter.snapshot()
    with pytest.raises(TypeError):
        meter.average_ma(since_time=0.0, since_charge_mas=0.0, since=snapshot)
    with pytest.raises(TypeError):
        meter.average_ma()


# -- the opt-in component timeline --------------------------------------------


def test_timeline_off_by_default(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("x", 1.0)
    assert not meter.timeline_enabled
    assert meter.timeline_events() == []


def test_timeline_records_transitions(kernel):
    meter = EnergyMeter(kernel)
    meter.enable_timeline()
    meter.enable_timeline()  # idempotent
    meter.set_draw("radio", 10.0)
    kernel.run_until(1.0)
    with meter.draw("op", 90.0):
        kernel.run_until(1.5)
    assert meter.timeline_events() == [
        (0.0, "radio", 10.0),
        (1.0, "op", 90.0),
        (1.5, "op", 0.0),
    ]


def test_timeline_seeds_with_active_draws(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("standby", 3.0)
    kernel.run_until(2.0)
    meter.enable_timeline()
    assert meter.timeline_events() == [(2.0, "standby", 3.0)]


def test_timeline_payload_shape(kernel):
    meter = EnergyMeter(kernel, name="relay")
    meter.enable_timeline()
    meter.set_draw("x", 1.0)
    payload = meter.timeline_payload()
    assert payload["format"] == "repro.energy.timeline/v1"
    assert payload["device"] == "relay"
    assert payload["events"] == [(0.0, "x", 1.0)]

"""Table 3 calibration constants."""

from repro.energy import constants


def test_values_match_paper_table3():
    assert constants.WIFI_RECEIVE_MA == 162.4
    assert constants.WIFI_SEND_MA == 183.3
    assert constants.WIFI_SCAN_MA == 129.2
    assert constants.WIFI_CONNECT_MA == 169.0
    assert constants.BLE_SCAN_MA == 7.0
    assert constants.BLE_ADVERTISE_MA == 8.2
    assert constants.WIFI_STANDBY_MA == 92.1
    assert constants.BLE_STANDBY_MA == 0.0


def test_table3_operations_mapping_complete():
    assert set(constants.TABLE3_OPERATIONS) == {
        "WiFi-receive",
        "WiFi-send",
        "WiFi-scan for networks",
        "WiFi-connect to network",
        "BLE-scan",
        "BLE-advertise",
    }


def test_ble_an_order_of_magnitude_below_wifi():
    # The qualitative observation Table 3 supports.
    assert constants.BLE_SCAN_MA * 10 < constants.WIFI_SCAN_MA
    assert constants.BLE_ADVERTISE_MA * 10 < constants.WIFI_SEND_MA

"""Energy windows and reports."""

import pytest

from repro.energy.constants import WIFI_STANDBY_MA
from repro.energy.meter import EnergyMeter
from repro.energy.report import EnergyWindow


def test_report_requires_start(kernel):
    window = EnergyWindow(EnergyMeter(kernel))
    with pytest.raises(RuntimeError):
        window.report()


def test_relative_average_subtracts_floor(kernel):
    meter = EnergyMeter(kernel)
    meter.set_draw("wifi.standby", WIFI_STANDBY_MA)
    window = EnergyWindow(meter)
    window.start()
    kernel.run_until(10.0)
    report = window.report()
    assert report.average_ma_absolute == pytest.approx(WIFI_STANDBY_MA)
    assert report.average_ma_relative == pytest.approx(0.0)


def test_negative_relative_when_radio_off(kernel):
    # The Table 4 SP/BLE case: no WiFi standby at all.
    meter = EnergyMeter(kernel)
    meter.set_draw("ble.scan", 7.0)
    window = EnergyWindow(meter)
    window.start()
    kernel.run_until(60.0)
    report = window.report()
    assert report.average_ma_relative == pytest.approx(7.0 - WIFI_STANDBY_MA)
    assert report.average_ma_relative < 0


def test_report_fields(kernel):
    meter = EnergyMeter(kernel, name="dev")
    window = EnergyWindow(meter, floor_ma=10.0)
    window.start()
    meter.set_draw("x", 30.0)
    kernel.run_until(4.0)
    report = window.report()
    assert report.device == "dev"
    assert report.window_s == pytest.approx(4.0)
    assert report.charge_mas == pytest.approx(120.0)
    assert report.average_ma_relative == pytest.approx(20.0)
    assert report.peak_ma == pytest.approx(30.0)


def test_window_restart_resets(kernel):
    meter = EnergyMeter(kernel)
    window = EnergyWindow(meter, floor_ma=0.0)
    window.start()
    meter.set_draw("x", 100.0)
    kernel.run_until(5.0)
    meter.set_draw("x", 0.0)
    window.start()
    kernel.run_until(10.0)
    assert window.report().charge_mas == pytest.approx(0.0)

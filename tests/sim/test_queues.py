"""SimQueue: FIFO semantics and process integration."""

from repro.sim.queues import SimQueue


def test_put_get_nowait_fifo():
    queue = SimQueue()
    queue.put(1)
    queue.put(2)
    assert queue.get_nowait() == 1
    assert queue.get_nowait() == 2
    assert queue.get_nowait() is None


def test_len_and_empty():
    queue = SimQueue()
    assert queue.empty
    queue.put("x")
    assert len(queue) == 1
    assert not queue.empty


def test_get_completes_immediately_when_item_buffered(kernel):
    queue = SimQueue()
    queue.put("ready")
    got = []

    def consumer():
        item = yield queue.get()
        got.append((kernel.now, item))

    kernel.spawn(consumer())
    kernel.run()
    assert got == [(0.0, "ready")]


def test_get_blocks_until_put(kernel):
    queue = SimQueue()
    got = []

    def consumer():
        item = yield queue.get()
        got.append((kernel.now, item))

    kernel.spawn(consumer())
    kernel.call_in(2.0, lambda: queue.put("late"))
    kernel.run()
    assert got == [(2.0, "late")]


def test_multiple_getters_served_fifo(kernel):
    queue = SimQueue()
    got = []

    def consumer(tag):
        item = yield queue.get()
        got.append((tag, item))

    kernel.spawn(consumer("first"))
    kernel.spawn(consumer("second"))
    kernel.call_in(1.0, lambda: queue.put("a"))
    kernel.call_in(2.0, lambda: queue.put("b"))
    kernel.run()
    assert got == [("first", "a"), ("second", "b")]


def test_consumer_loop_processes_stream(kernel):
    queue = SimQueue()
    got = []

    def consumer():
        while True:
            item = yield queue.get()
            got.append(item)
            if item == "stop":
                return

    kernel.spawn(consumer())
    for index, when in enumerate([0.5, 1.0, 1.5]):
        kernel.call_in(when, lambda i=index: queue.put(i))
    kernel.call_in(2.0, lambda: queue.put("stop"))
    kernel.run()
    assert got == [0, 1, 2, "stop"]


def test_drain_returns_and_clears():
    queue = SimQueue()
    for item in range(5):
        queue.put(item)
    assert queue.drain() == [0, 1, 2, 3, 4]
    assert queue.empty
    assert queue.drain() == []


def test_counters_track_lifetime_totals():
    queue = SimQueue()
    queue.put(1)
    queue.put(2)
    queue.get_nowait()
    assert queue.total_put == 2
    assert queue.total_got == 1


def test_abandoned_getter_is_skipped(kernel):
    queue = SimQueue()
    got = []

    def abandoner():
        try:
            yield queue.get()
        except Exception:
            pass

    def consumer():
        item = yield queue.get()
        got.append(item)

    process = kernel.spawn(abandoner())
    kernel.spawn(consumer())
    # Interrupt the first getter before anything arrives; its queue slot
    # must not swallow the item.
    kernel.call_in(0.5, lambda: process.interrupt())
    kernel.call_in(1.0, lambda: queue.put("item"))
    kernel.run()
    assert got == ["item"]

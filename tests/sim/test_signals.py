"""Broadcast signals."""

from repro.sim.signals import Signal


def test_fire_wakes_all_current_waiters(kernel):
    signal = Signal()
    woken = []

    def waiter(tag):
        value = yield signal.wait()
        woken.append((tag, value))

    kernel.spawn(waiter("a"))
    kernel.spawn(waiter("b"))
    kernel.call_in(1.0, lambda: signal.fire("go"))
    kernel.run()
    assert sorted(woken) == [("a", "go"), ("b", "go")]


def test_fire_returns_woken_count(kernel):
    signal = Signal()

    def waiter():
        yield signal.wait()

    kernel.spawn(waiter())
    kernel.spawn(waiter())
    kernel.run_until(0.1)
    assert signal.fire() == 2
    assert signal.fire() == 0  # nobody left


def test_waiters_registered_after_fire_wait_for_next(kernel):
    signal = Signal()
    woken = []

    def late_waiter():
        yield kernel.timeout(2.0)
        value = yield signal.wait()
        woken.append((kernel.now, value))

    kernel.spawn(late_waiter())
    kernel.call_in(1.0, lambda: signal.fire("first"))
    kernel.call_in(3.0, lambda: signal.fire("second"))
    kernel.run()
    assert woken == [(3.0, "second")]


def test_fire_count_and_waiter_count(kernel):
    signal = Signal("test")

    def waiter():
        yield signal.wait()

    kernel.spawn(waiter())
    kernel.run_until(0.1)
    assert signal.waiter_count == 1
    signal.fire()
    assert signal.waiter_count == 0
    assert signal.fire_count == 1

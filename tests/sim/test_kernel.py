"""Kernel facade: time, periodic tasks, run helpers."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.process import Completion


def test_now_starts_at_zero(kernel):
    assert kernel.now == 0.0


def test_call_in_and_call_at(kernel):
    fired = []
    kernel.call_in(1.0, lambda: fired.append(("in", kernel.now)))
    kernel.call_at(2.0, lambda: fired.append(("at", kernel.now)))
    kernel.run()
    assert fired == [("in", 1.0), ("at", 2.0)]


def test_run_for_advances_relative(kernel):
    kernel.run_for(3.0)
    assert kernel.now == 3.0
    kernel.run_for(2.0)
    assert kernel.now == 5.0


def test_every_fires_periodically(kernel):
    ticks = []
    kernel.every(1.0, lambda: ticks.append(kernel.now))
    kernel.run_until(5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_every_start_after_zero_fires_immediately(kernel):
    ticks = []
    kernel.every(1.0, lambda: ticks.append(kernel.now), start_after=0.0)
    kernel.run_until(2.5)
    assert ticks == [0.0, 1.0, 2.0]


def test_periodic_task_cancel(kernel):
    ticks = []
    task = kernel.every(1.0, lambda: ticks.append(kernel.now))
    kernel.run_until(2.5)
    task.cancel()
    kernel.run_until(10.0)
    assert ticks == [1.0, 2.0]
    assert task.cancelled


def test_periodic_task_can_cancel_itself(kernel):
    ticks = []

    def tick():
        ticks.append(kernel.now)
        if len(ticks) == 3:
            task.cancel()

    task = kernel.every(1.0, tick)
    kernel.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_task_set_period(kernel):
    ticks = []
    task = kernel.every(1.0, lambda: ticks.append(kernel.now))
    kernel.run_until(2.0)
    # The firing already scheduled (t=3) keeps the old period; the new
    # period applies to every interval after it.
    task.set_period(2.0)
    kernel.run_until(6.5)
    assert ticks == [1.0, 2.0, 3.0, 5.0]


def test_periodic_task_rejects_bad_period(kernel):
    with pytest.raises(ValueError):
        kernel.every(0.0, lambda: None)
    task = kernel.every(1.0, lambda: None)
    with pytest.raises(ValueError):
        task.set_period(-1.0)


def test_periodic_jitter_stays_within_fraction(kernel):
    times = []
    kernel.every(1.0, lambda: times.append(kernel.now), jitter_fraction=0.1)
    kernel.run_until(50.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(0.9 <= gap <= 1.1 for gap in gaps)
    assert len(set(gaps)) > 1  # jitter actually jitters


def test_run_until_complete_returns_value(kernel):
    completion = Completion()
    kernel.call_in(2.0, lambda: completion.succeed("done"))
    assert kernel.run_until_complete(completion) == "done"
    assert kernel.now == 2.0


def test_run_until_complete_raises_waitable_exception(kernel):
    completion = Completion()
    kernel.call_in(1.0, lambda: completion.fail(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        kernel.run_until_complete(completion)


def test_run_until_complete_timeout(kernel):
    completion = Completion()
    kernel.every(1.0, lambda: None)  # keep the schedule alive
    with pytest.raises(TimeoutError):
        kernel.run_until_complete(completion, timeout=5.0)
    assert kernel.now == pytest.approx(5.0)


def test_run_until_complete_deadlock_detection(kernel):
    completion = Completion()
    with pytest.raises(RuntimeError, match="deadlock"):
        kernel.run_until_complete(completion)


def test_deterministic_given_seed():
    def run(seed):
        kernel = Kernel(seed=seed)
        samples = []
        kernel.every(1.0, lambda: samples.append(kernel.rng.random()),
                     jitter_fraction=0.2)
        kernel.run_until(20.0)
        return samples

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_run_window_fires_strictly_before_end(kernel):
    fired = []
    kernel.call_at(1.0, lambda: fired.append("inside"))
    kernel.call_at(2.0, lambda: fired.append("boundary"))
    kernel.run_window(2.0)
    assert fired == ["inside"]
    assert kernel.now == 2.0
    kernel.run_window(3.0)
    assert fired == ["inside", "boundary"]


def test_barrier_hooks_run_at_every_window_end(kernel):
    seen = []
    kernel.add_barrier_hook(lambda end: seen.append(("a", end)))
    kernel.add_barrier_hook(lambda end: seen.append(("b", end)))
    kernel.run_window(1.0)
    kernel.run_window(2.5)
    assert seen == [("a", 1.0), ("b", 1.0), ("a", 2.5), ("b", 2.5)]


def test_barrier_hook_sees_window_events_already_executed(kernel):
    order = []
    kernel.call_at(0.5, lambda: order.append("event"))
    kernel.add_barrier_hook(lambda end: order.append("barrier"))
    kernel.run_window(1.0)
    assert order == ["event", "barrier"]

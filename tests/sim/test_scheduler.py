"""Event scheduler: ordering, cancellation, clock semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.errors import SchedulingInPastError
from repro.sim.scheduler import EventScheduler


def test_events_fire_in_time_order():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(0.3, lambda: fired.append("c"))
    scheduler.schedule(0.1, lambda: fired.append("a"))
    scheduler.schedule(0.2, lambda: fired.append("b"))
    scheduler.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    scheduler = EventScheduler()
    fired = []
    for label in "abcde":
        scheduler.schedule(1.0, lambda label=label: fired.append(label))
    scheduler.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time_before_callback():
    scheduler = EventScheduler()
    seen = []
    scheduler.schedule(2.5, lambda: seen.append(scheduler.now))
    scheduler.run()
    assert seen == [2.5]


def test_run_until_lands_exactly_on_deadline():
    scheduler = EventScheduler()
    scheduler.schedule(0.5, lambda: None)
    scheduler.run_until(10.0)
    assert scheduler.now == 10.0


def test_run_until_does_not_fire_later_events():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(5.0, lambda: fired.append("late"))
    scheduler.run_until(4.999)
    assert fired == []
    scheduler.run_until(5.0)
    assert fired == ["late"]


def test_cancelled_events_do_not_fire():
    scheduler = EventScheduler()
    fired = []
    handle = scheduler.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    scheduler.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    scheduler = EventScheduler()
    handle = scheduler.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert len(scheduler) == 0


def test_len_counts_only_pending():
    scheduler = EventScheduler()
    keep = scheduler.schedule(1.0, lambda: None)
    drop = scheduler.schedule(2.0, lambda: None)
    drop.cancel()
    assert len(scheduler) == 1


def test_len_stays_exact_across_cancel_and_reschedule():
    # Regression: __len__ is maintained incrementally now (it used to
    # re-scan the heap), so every push/pop/cancel path must keep it exact —
    # including cancelling an already-fired handle and double-cancels.
    scheduler = EventScheduler()
    first = scheduler.schedule(1.0, lambda: None)
    second = scheduler.schedule(2.0, lambda: None)
    assert len(scheduler) == 2
    first.cancel()
    assert len(scheduler) == 1
    replacement = scheduler.schedule(1.5, lambda: None)
    assert len(scheduler) == 2
    replacement.cancel()
    replacement.cancel()  # idempotent: must not double-decrement
    assert len(scheduler) == 1
    assert scheduler.step() is True  # fires `second`
    assert len(scheduler) == 0
    second.cancel()  # cancelling after firing must not go negative
    assert len(scheduler) == 0
    again = scheduler.schedule(1.0, lambda: None)
    assert len(scheduler) == 1
    scheduler.run()
    assert len(scheduler) == 0


def test_len_exact_while_cancelled_events_still_in_heap():
    scheduler = EventScheduler()
    handles = [scheduler.schedule(float(i + 1), lambda: None) for i in range(5)]
    handles[3].cancel()
    handles[1].cancel()
    # The cancelled handles are still buried in the heap (lazy deletion),
    # but the count must already exclude them.
    assert len(scheduler) == 3
    scheduler.run()
    assert len(scheduler) == 0


def test_scheduling_in_past_raises():
    scheduler = EventScheduler()
    scheduler.schedule(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(SchedulingInPastError):
        scheduler.schedule_at(0.5, lambda: None)
    with pytest.raises(SchedulingInPastError):
        scheduler.schedule(-0.1, lambda: None)


def test_run_until_backwards_raises():
    scheduler = EventScheduler()
    scheduler.run_until(5.0)
    with pytest.raises(SchedulingInPastError):
        scheduler.run_until(4.0)


def test_callback_may_schedule_more_events():
    scheduler = EventScheduler()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            scheduler.schedule(1.0, lambda: chain(depth + 1))

    scheduler.schedule(1.0, lambda: chain(0))
    scheduler.run()
    assert fired == [0, 1, 2, 3]
    assert scheduler.now == 4.0


def test_peek_time_skips_cancelled():
    scheduler = EventScheduler()
    early = scheduler.schedule(1.0, lambda: None)
    scheduler.schedule(2.0, lambda: None)
    early.cancel()
    assert scheduler.peek_time() == 2.0


def test_step_returns_false_when_drained():
    scheduler = EventScheduler()
    assert scheduler.step() is False
    scheduler.schedule(0.1, lambda: None)
    assert scheduler.step() is True
    assert scheduler.step() is False


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_property_firing_order_is_sorted_by_time(delays):
    scheduler = EventScheduler()
    fired = []
    for index, delay in enumerate(delays):
        scheduler.schedule(delay, lambda d=delay: fired.append(d))
    scheduler.run()
    assert fired == sorted(delays)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.booleans()),
                max_size=30))
def test_property_cancelled_never_fire(items):
    scheduler = EventScheduler()
    fired = []
    expected = []
    for index, (delay, keep) in enumerate(items):
        handle = scheduler.schedule(delay, lambda i=index: fired.append(i))
        if keep:
            expected.append(index)
        else:
            handle.cancel()
    scheduler.run()
    assert sorted(fired) == expected


def test_run_before_stops_short_of_deadline_events():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(1.0, lambda: fired.append("early"))
    scheduler.schedule(2.0, lambda: fired.append("boundary"))
    scheduler.run_before(2.0)
    assert fired == ["early"]
    assert scheduler.now == 2.0
    # The boundary event is still queued and fires in the next window.
    scheduler.run_before(3.0)
    assert fired == ["early", "boundary"]


def test_run_before_backwards_raises():
    scheduler = EventScheduler()
    scheduler.run_before(5.0)
    with pytest.raises(SchedulingInPastError):
        scheduler.run_before(4.0)


def test_step_batch_executes_all_ties_at_once():
    scheduler = EventScheduler()
    fired = []
    for label in "abc":
        scheduler.schedule(1.0, lambda label=label: fired.append(label))
    scheduler.schedule(2.0, lambda: fired.append("later"))
    assert scheduler.step_batch() == 3
    assert fired == ["a", "b", "c"]
    assert scheduler.step_batch() == 1
    assert fired == ["a", "b", "c", "later"]
    assert scheduler.step_batch() == 0


def test_step_batch_respects_cancellation_inside_the_batch():
    scheduler = EventScheduler()
    fired = []
    handles = [
        scheduler.schedule(1.0, lambda i=i: fired.append(i)) for i in range(4)
    ]
    # Event 0 cancels event 2 when it runs — same timestamp, same batch.
    handles[0].callback = lambda: (fired.append(0), handles[2].cancel())
    assert scheduler.step_batch() == 3
    assert fired == [0, 1, 3]
    assert len(scheduler) == 0


def test_batched_run_matches_stepwise_run_exactly():
    def build():
        scheduler = EventScheduler()
        fired = []
        for index, time in enumerate([3.0, 1.0, 1.0, 2.0, 1.0, 3.0]):
            scheduler.schedule(time, lambda i=index, t=time: fired.append((t, i)))
        return scheduler, fired

    batched, batched_fired = build()
    batched.run()
    stepwise, stepwise_fired = build()
    while stepwise.step():
        pass
    assert batched_fired == stepwise_fired

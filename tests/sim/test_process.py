"""Generator processes: timeouts, joins, interrupts, combinators."""

import pytest

from repro.sim.errors import Interrupt, ProcessAlreadyFinished
from repro.sim.process import AllOf, AnyOf, Completion, Timeout, sleep


def test_timeout_resumes_after_delay(kernel):
    log = []

    def body():
        log.append(("start", kernel.now))
        yield Timeout(1.5)
        log.append(("after", kernel.now))

    kernel.spawn(body())
    kernel.run()
    assert log == [("start", 0.0), ("after", 1.5)]


def test_sleep_alias(kernel):
    times = []

    def body():
        yield sleep(0.5)
        times.append(kernel.now)

    kernel.spawn(body())
    kernel.run()
    assert times == [0.5]


def test_timeout_rejects_negative_delay():
    with pytest.raises(ValueError):
        Timeout(-1)


def test_process_return_value_via_join(kernel):
    def worker():
        yield Timeout(1.0)
        return 42

    def parent():
        result = yield kernel.spawn(worker())
        results.append(result)

    results = []
    kernel.spawn(parent())
    kernel.run()
    assert results == [42]


def test_join_already_finished_process(kernel):
    def worker():
        yield Timeout(0.1)
        return "early"

    worker_process = kernel.spawn(worker())
    kernel.run()
    assert worker_process.done

    def late_parent():
        value = yield worker_process
        seen.append(value)

    seen = []
    kernel.spawn(late_parent())
    kernel.run()
    assert seen == ["early"]


def test_completion_wakes_waiter_with_value(kernel):
    completion = Completion()
    seen = []

    def waiter():
        value = yield completion
        seen.append((kernel.now, value))

    kernel.spawn(waiter())
    kernel.call_in(2.0, lambda: completion.succeed("payload"))
    kernel.run()
    assert seen == [(2.0, "payload")]


def test_completion_failure_raises_in_waiter(kernel):
    completion = Completion()
    caught = []

    def waiter():
        try:
            yield completion
        except ValueError as error:
            caught.append(str(error))

    kernel.spawn(waiter())
    kernel.call_in(1.0, lambda: completion.fail(ValueError("bad")))
    kernel.run()
    assert caught == ["bad"]


def test_uncaught_process_exception_propagates(kernel):
    def bad():
        yield Timeout(0.5)
        raise RuntimeError("exploded")

    kernel.spawn(bad())
    with pytest.raises(RuntimeError, match="exploded"):
        kernel.run()


def test_swallowed_process_exception(kernel):
    kernel.swallow_process_errors = True

    def bad():
        yield Timeout(0.5)
        raise RuntimeError("quiet")

    process = kernel.spawn(bad())
    kernel.run()
    assert process.done
    assert isinstance(process.exception, RuntimeError)


def test_joined_process_exception_delivered_to_parent(kernel):
    def bad():
        yield Timeout(0.5)
        raise RuntimeError("handled")

    caught = []

    def parent():
        try:
            yield kernel.spawn(bad())
        except RuntimeError as error:
            caught.append(str(error))

    kernel.spawn(parent())
    kernel.run()
    assert caught == ["handled"]


def test_interrupt_raises_inside_process(kernel):
    log = []

    def body():
        try:
            yield Timeout(10.0)
        except Interrupt as interrupt:
            log.append(("interrupted", kernel.now, interrupt.cause))

    process = kernel.spawn(body())
    kernel.call_in(1.0, lambda: process.interrupt("shutdown"))
    kernel.run()
    assert log == [("interrupted", 1.0, "shutdown")]


def test_uncaught_interrupt_terminates_quietly(kernel):
    def body():
        yield Timeout(10.0)

    process = kernel.spawn(body())
    kernel.call_in(1.0, lambda: process.interrupt("stop"))
    kernel.run()
    assert process.done
    assert process.exception is None


def test_interrupt_finished_process_raises(kernel):
    def body():
        yield Timeout(0.1)

    process = kernel.spawn(body())
    kernel.run()
    with pytest.raises(ProcessAlreadyFinished):
        process.interrupt()


def test_stale_wakeup_after_interrupt_is_ignored(kernel):
    log = []

    def body():
        try:
            yield Timeout(2.0)
            log.append("timeout-fired")
        except Interrupt:
            yield Timeout(5.0)  # keep living past the stale timeout
            log.append("survived")

    process = kernel.spawn(body())
    kernel.call_in(1.0, lambda: process.interrupt())
    kernel.run()
    assert log == ["survived"]


def test_yielding_non_waitable_fails_process(kernel):
    kernel.swallow_process_errors = True

    def body():
        yield 42

    process = kernel.spawn(body())
    kernel.run()
    assert isinstance(process.exception, TypeError)


def test_anyof_returns_first_winner(kernel):
    results = []

    def body():
        winner = yield AnyOf([Timeout(3.0), Timeout(1.0), Timeout(2.0)])
        results.append((kernel.now, winner))

    kernel.spawn(body())
    kernel.run_until(10.0)
    assert results == [(1.0, (1, 1.0))]


def test_anyof_requires_waitables():
    with pytest.raises(ValueError):
        AnyOf([])


def test_allof_collects_all_values(kernel):
    results = []

    def body():
        values = yield AllOf([Timeout(1.0), Timeout(2.0)])
        results.append((kernel.now, values))

    kernel.spawn(body())
    kernel.run_until(10.0)
    assert results == [(2.0, [1.0, 2.0])]


def test_allof_empty_completes_immediately(kernel):
    results = []

    def body():
        values = yield AllOf([])
        results.append(values)

    kernel.spawn(body())
    kernel.run_until(1.0)
    assert results == [[]]


def test_allof_propagates_first_failure(kernel):
    completion = Completion()
    caught = []

    def body():
        try:
            yield AllOf([Timeout(5.0), completion])
        except KeyError as error:
            caught.append(kernel.now)

    kernel.spawn(body())
    kernel.call_in(1.0, lambda: completion.fail(KeyError("broken")))
    kernel.run_until(10.0)
    assert caught == [1.0]


def test_process_repr_shows_state(kernel):
    def body():
        yield Timeout(1.0)

    process = kernel.spawn(body(), name="worker")
    assert "alive" in repr(process)
    kernel.run()
    assert "done" in repr(process)


def test_spawn_is_deferred_not_reentrant(kernel):
    order = []

    def body():
        order.append("process")
        yield Timeout(0.1)

    kernel.spawn(body())
    order.append("after-spawn")
    kernel.run()
    assert order == ["after-spawn", "process"]

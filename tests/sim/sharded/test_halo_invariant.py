"""Property tests of the conservative halo invariant (the PDES safety core).

The sharded simulator is only correct if, for every window, every node a
shard's owned senders could possibly reach is present in that shard —
owned or mirrored — before the window runs.  These tests step real
:class:`ShardRuntime` populations through their horizon protocol and check
that superset property directly against brute-force geometry, plus the
ownership-partition invariant the protocol maintains by induction.
"""

from hypothesis import given, settings, strategies as st

from repro.radio.frame import RadioKind
from repro.radio.medium import DEFAULT_RANGES
from repro.sim.sharded.shard import ShardRuntime
from repro.sim.sharded.spec import ScenarioSpec, build_models

RANGE_M = DEFAULT_RANGES[RadioKind.BLE]


def windows(spec, shards):
    """Drive the inline horizon protocol, yielding each settled window."""
    runtimes = [ShardRuntime(spec, shards, index) for index in range(shards)]
    t0 = 0.0
    for t1 in spec.window_ends():
        packets = [runtime.horizon_packet(t0, t1) for runtime in runtimes]
        for runtime in runtimes:
            runtime.take_records()
        for dst, runtime in enumerate(runtimes):
            adverts, handoffs = [], []
            for src in range(shards):
                adverts.extend(packets[src][0].get(dst, []))
                handoffs.extend(packets[src][1].get(dst, []))
            runtime.apply_inbound(t0, handoffs, adverts)
        yield runtimes, t0, t1
        for runtime in runtimes:
            runtime.schedule_window(t0, t1)
            runtime.run_window(t1)
        t0 = t1


def sample_times(t0, t1, points=5):
    span = t1 - t0
    return [t0 + span * step / (points - 1) for step in range(points)]


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=2, max_value=5),
    node_count=st.integers(min_value=12, max_value=36),
    horizon_s=st.sampled_from([2.0, 5.0, 7.5, 10.0]),
)
def test_property_halo_is_a_superset_of_reachability(
    seed, shards, node_count, horizon_s
):
    spec = ScenarioSpec(
        name="halo-prop",
        arena_m=200.0,
        node_count=node_count,
        rounds=3,
        beacon_period_s=5.0,
        horizon_s=horizon_s,
        seed=seed,
    )
    models = build_models(spec)
    for runtimes, t0, t1 in windows(spec, shards):
        for runtime in runtimes:
            owned = set(runtime.owned_indexes())
            present = owned | set(runtime.mirror_indexes())
            for t in sample_times(t0, t1):
                positions = [model.position_at(t) for model in models]
                for sender in owned:
                    for receiver in range(spec.node_count):
                        if receiver == sender:
                            continue
                        gap = positions[sender].distance_to(positions[receiver])
                        if gap <= RANGE_M:
                            assert receiver in present, (
                                f"node {receiver} within {gap:.1f}m of owned "
                                f"sender {sender} at t={t} but absent from "
                                f"shard {runtime.shard_index} in window "
                                f"[{t0}, {t1})"
                            )


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=2, max_value=5),
)
def test_property_ownership_is_a_partition(seed, shards):
    spec = ScenarioSpec(
        name="owner-prop",
        arena_m=150.0,
        node_count=20,
        rounds=3,
        beacon_period_s=4.0,
        horizon_s=4.0,
        seed=seed,
    )
    models = build_models(spec)
    for runtimes, t0, _t1 in windows(spec, shards):
        owners = {}
        for runtime in runtimes:
            plan = runtime.plan
            for index in runtime.owned_indexes():
                assert index not in owners, (
                    f"node {index} owned by shards {owners[index]} and "
                    f"{runtime.shard_index} in the same window"
                )
                owners[index] = runtime.shard_index
                # Ownership tracks the window-start position exactly.
                assert plan.strip_of(models[index].position_at(t0)) \
                    == runtime.shard_index
        assert sorted(owners) == list(range(spec.node_count))
        # Every mirror knows its node's true owner for this window.
        for runtime in runtimes:
            for index in runtime.mirror_indexes():
                node = runtime.world.node(f"n{index:05d}")
                assert node.owner_shard == owners[index]

"""Boundary message codecs and the mirror mutation API."""

import pytest

from repro.phy.geometry import Position
from repro.phy.mobility import Static
from repro.phy.world import MirrorNodeError, World
from repro.sim.kernel import Kernel
from repro.sim.sharded import boundary


def test_advert_roundtrip():
    adverts = [(0, 1, 12.5, -3.25), (4294967295, 7, 0.0, 1e6)]
    assert boundary.unpack_adverts(boundary.pack_adverts(adverts)) == adverts


def test_handoff_roundtrip():
    indexes = [3, 0, 99999]
    assert boundary.unpack_handoffs(boundary.pack_handoffs(indexes)) == indexes


def test_record_roundtrip_is_bitwise():
    records = [
        (10.001000000000001, 5, 9, 2, 17.321923),
        (0.0, 0, 1, 0, 0.0),
    ]
    assert boundary.unpack_records(boundary.pack_records(records)) == records


def test_boundary_blob_roundtrip():
    adverts = [(1, 0, 5.0, 6.0), (2, 3, -1.0, 2.0)]
    handoffs = [7, 8]
    blob = boundary.pack_boundary(adverts, handoffs)
    assert boundary.unpack_boundary(blob) == (adverts, handoffs)
    assert boundary.unpack_boundary(boundary.pack_boundary([], [])) == ([], [])


def test_truncated_boundary_blob_rejected():
    blob = boundary.pack_boundary([(1, 0, 5.0, 6.0)], [2])
    with pytest.raises(boundary.BoundaryProtocolError):
        boundary.unpack_boundary(blob[:-1])


def test_create_mirror_verifies_adverted_position():
    kernel = Kernel(seed=1)
    world = World(kernel)
    model = Static(Position(10.0, 20.0))
    node = boundary.create_mirror(world, "m", model, 2, 0.0, 10.0, 20.0)
    assert node.is_mirror and node.owner_shard == 2
    with pytest.raises(boundary.BoundaryProtocolError):
        boundary.create_mirror(
            World(Kernel(seed=1)), "m", model, 2, 0.0, 10.0, 20.5
        )


def test_reassign_mirror_owner_goes_through_exchange():
    kernel = Kernel(seed=1)
    world = World(kernel)
    node = boundary.create_mirror(
        world, "m", Static(Position(0.0, 0.0)), 1, 0.0, 0.0, 0.0
    )
    boundary.reassign_mirror_owner(world, node, 3)
    assert node.owner_shard == 3
    # ...and the direct path stays closed outside the exchange.
    with pytest.raises(MirrorNodeError):
        node.move_to(Position(1.0, 1.0))

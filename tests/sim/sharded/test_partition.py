"""StripPlan geometry: ownership, x-distance, halo fan-out."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy.geometry import Position
from repro.sim.sharded.partition import StripPlan


def test_strip_of_partitions_the_arena():
    plan = StripPlan(arena_m=100.0, shards=4)
    assert plan.strip_width == 25.0
    assert plan.strip_of(Position(0.0, 50.0)) == 0
    assert plan.strip_of(Position(24.9, 0.0)) == 0
    assert plan.strip_of(Position(25.0, 0.0)) == 1
    assert plan.strip_of(Position(99.9, 0.0)) == 3


def test_edge_strips_extend_to_infinity():
    plan = StripPlan(arena_m=100.0, shards=4)
    assert plan.strip_of(Position(-500.0, 0.0)) == 0
    assert plan.strip_of(Position(1e6, 0.0)) == 3
    lo, _ = plan.strip_bounds(0)
    _, hi = plan.strip_bounds(3)
    assert lo == -math.inf
    assert hi == math.inf


def test_xdist_is_zero_inside_the_strip():
    plan = StripPlan(arena_m=100.0, shards=4)
    assert plan.xdist(Position(30.0, 7.0), 1) == 0.0
    assert plan.xdist(Position(10.0, 0.0), 1) == 15.0
    assert plan.xdist(Position(80.0, 0.0), 1) == 30.0


def test_invalid_plans_rejected():
    with pytest.raises(ValueError):
        StripPlan(arena_m=100.0, shards=0)
    with pytest.raises(ValueError):
        StripPlan(arena_m=0.0, shards=2)


@given(
    x=st.floats(min_value=-200.0, max_value=1200.0, allow_nan=False),
    reach=st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    shards=st.integers(min_value=1, max_value=8),
)
def test_property_shards_within_matches_xdist(x, reach, shards):
    # shards_within must be exactly the shards whose strip x-distance is
    # within reach — the halo criterion evaluates over this set.
    plan = StripPlan(arena_m=1000.0, shards=shards)
    position = Position(x, 0.0)
    selected = set(plan.shards_within(position, reach))
    expected = {
        shard for shard in range(shards)
        if plan.xdist(position, shard) <= reach
    }
    assert selected >= expected
    # And never wildly bigger: anything selected is within one strip width
    # of qualifying (floor rounding at the edges).
    for shard in selected - expected:
        assert plan.xdist(position, shard) <= reach + plan.strip_width


@given(x=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
       shards=st.integers(min_value=1, max_value=8))
def test_property_every_position_has_exactly_one_owner(x, shards):
    plan = StripPlan(arena_m=500.0, shards=shards)
    owner = plan.strip_of(Position(x, 0.0))
    assert 0 <= owner < shards
    assert plan.xdist(Position(x, 0.0), owner) == 0.0

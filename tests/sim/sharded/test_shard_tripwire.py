"""The runtime RNG tripwire armed inside shard worker processes.

Each forked shard installs a tripwire labeled with its shard id (unless
the process inherited one from the runner cell), so a stray
``random.random()`` anywhere in the window loop kills that shard's run
and the violation — shard id included — propagates to the coordinator
as the shard-failure RuntimeError instead of silently diverging digests.
"""

import multiprocessing
import random

import pytest

from repro.analysis import tripwire
from repro.sim.sharded import ScenarioSpec, run_serial, run_sharded
from repro.sim.sharded.shard import ShardRuntime

SPEC = ScenarioSpec(
    name="tripwire",
    arena_m=200.0,
    node_count=16,
    rounds=2,
    beacon_period_s=5.0,
    horizon_s=5.0,
    seed=11,
)

_fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="monkeypatched shard code reaches workers only via fork",
)


@_fork_only
def test_global_rng_in_shard_worker_fails_with_shard_id(monkeypatch):
    original = ShardRuntime.schedule_window

    def dirty_schedule(self, t0, t1):
        random.random()  # the violation under test
        return original(self, t0, t1)

    monkeypatch.setattr(ShardRuntime, "schedule_window", dirty_schedule)
    with pytest.raises(RuntimeError) as excinfo:
        run_sharded(SPEC, 2, processes=True)
    message = str(excinfo.value)
    assert "GlobalRngError" in message
    assert "random.random()" in message
    # The failing shard names itself in the tripwire label...
    assert "while running shard " in message
    # ... and the coordinator names it again when surfacing the failure.
    assert message.startswith("shard ")


@_fork_only
def test_armed_shards_still_match_serial():
    serial = run_serial(SPEC)
    outcome = run_sharded(SPEC, 3, processes=True)
    assert outcome.digest == serial.digest
    assert tripwire.active() is None  # nothing leaked into the parent


@_fork_only
def test_inherited_tripwire_is_not_double_armed():
    # Under the runner a forked worker inherits the cell's tripwire; the
    # shard must detect it and not attempt a second install (which raises).
    armed = tripwire.install("parent cell")
    try:
        outcome = run_sharded(SPEC, 2, processes=True)
        assert outcome.record_count > 0
        armed.verify()  # shards never touched the parent's snapshot
    finally:
        armed.uninstall()

"""End-to-end digest equality: serial vs sharded, inline vs processes."""

import pytest

from repro.phy.geometry import Position
from repro.phy.mobility import MobilityModel
from repro.sim.sharded import ScenarioSpec, run_serial, run_sharded
from repro.sim.sharded.engine import canonical_records, delivery_digest
from repro.sim.sharded.spec import build_models, population_speed_cap

SPEC = ScenarioSpec(
    name="engine-eq",
    arena_m=400.0,
    node_count=70,
    rounds=4,
    beacon_period_s=5.0,
    horizon_s=5.0,
    seed=97,
)


@pytest.fixture(scope="module")
def serial_outcome():
    return run_serial(SPEC)


def test_serial_run_delivers_and_digests(serial_outcome):
    assert serial_outcome.mode == "serial"
    assert serial_outcome.record_count > 0
    assert serial_outcome.record_count == serial_outcome.frames_delivered
    assert len(serial_outcome.digest) == 16


@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_inline_sharded_matches_serial(serial_outcome, shards):
    outcome = run_sharded(SPEC, shards, processes=False)
    assert outcome.digest == serial_outcome.digest
    assert outcome.record_count == serial_outcome.record_count
    assert outcome.frames_delivered == serial_outcome.frames_delivered
    assert len(outcome.shard_results) == shards


def test_process_sharded_matches_serial(serial_outcome):
    outcome = run_sharded(SPEC, 3, processes=True)
    assert outcome.mode == "sharded-processes"
    assert outcome.digest == serial_outcome.digest
    assert outcome.record_count == serial_outcome.record_count


def test_process_sharded_inline_artifacts_match_serial(serial_outcome):
    outcome = run_sharded(SPEC, 2, processes=True, use_shared_memory=False)
    assert outcome.digest == serial_outcome.digest


def test_sharded_accounting_is_conserved():
    outcome = run_sharded(SPEC, 4, processes=False)
    assert sum(r.handoffs_out for r in outcome.shard_results) \
        == sum(r.handoffs_in for r in outcome.shard_results)
    assert sum(r.owned_final for r in outcome.shard_results) == SPEC.node_count
    # Cross-shard traffic exists in this scenario and is counted.
    assert outcome.frames_cross_shard > 0


def test_shard_count_must_be_positive():
    with pytest.raises(ValueError):
        run_sharded(SPEC, 0)


def test_canonical_merge_is_order_insensitive():
    records = [
        (2.0, 1, 2, 0, 10.0),
        (1.0, 3, 4, 0, 5.0),
        (1.0, 3, 2, 0, 5.0),
    ]
    assert delivery_digest(records) == delivery_digest(list(reversed(records)))
    assert canonical_records(records)[0] == (1.0, 3, 2, 0, 5.0)


class _Teleporter(MobilityModel):
    def position_at(self, time):
        return Position(0.0, 0.0)

    def max_displacement(self, t0, t1):
        return float("inf")


def test_unbounded_mobility_rejected():
    models = build_models(ScenarioSpec(
        name="cap", arena_m=100.0, node_count=5, rounds=1,
        beacon_period_s=5.0, horizon_s=5.0, seed=1,
    ))
    assert population_speed_cap(models) > 0.0
    with pytest.raises(ValueError, match="unbounded"):
        population_speed_cap([_Teleporter()])

"""Device: radios, meter, identity."""

import pytest

from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.frame import RadioKind


def test_device_name_defaults_to_node(kernel, world, medium):
    from repro.phy.geometry import Position

    node = world.add_node("dev-1", position=Position(0, 0))
    device = Device(kernel, node)
    assert device.name == "dev-1"
    assert device.meter.name == "dev-1"


def test_radio_lookup_and_has_radio(make_device):
    device = make_device("a", radios=("ble", "wifi"))
    assert device.has_radio(RadioKind.BLE)
    assert device.has_radio(RadioKind.WIFI)
    assert not device.has_radio(RadioKind.NFC)
    assert device.radio(RadioKind.BLE).kind is RadioKind.BLE


def test_duplicate_radio_kind_rejected(kernel, world, medium):
    from repro.phy.geometry import Position

    node = world.add_node("dup", position=Position(0, 0))
    device = Device(kernel, node)
    device.add_radio(BleRadio(device, medium))
    with pytest.raises(ValueError):
        device.add_radio(BleRadio(device, medium))


def test_radio_names_are_qualified(make_device):
    device = make_device("tourist")
    assert device.radio(RadioKind.BLE).name == "tourist.ble"
    assert device.radio(RadioKind.WIFI).name == "tourist.wifi"


def test_op_component_names_are_unique(make_device):
    radio = make_device("a").radio(RadioKind.BLE)
    names = {radio._op_component("adv") for _ in range(100)}
    assert len(names) == 100


def test_repr_lists_radio_kinds(make_device):
    device = make_device("x", radios=("ble", "wifi", "nfc"))
    assert "ble" in repr(device)
    assert "nfc" in repr(device)

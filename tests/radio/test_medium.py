"""The wireless medium: range gating and delivery."""

import pytest

from repro.phy.propagation import UnitDisk
from repro.radio.frame import RadioKind
from repro.radio.medium import DEFAULT_RANGES


def _scan_all(device, heard):
    device.radios[RadioKind.BLE].start_scanning(
        lambda payload, mac, distance: heard.append((payload, distance))
    )


def test_default_ranges_per_technology():
    assert DEFAULT_RANGES[RadioKind.BLE] == 30.0
    assert DEFAULT_RANGES[RadioKind.WIFI] == 100.0
    assert DEFAULT_RANGES[RadioKind.NFC] == pytest.approx(0.1)


def test_broadcast_reaches_in_range_receiver(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=10)
    heard = []
    _scan_all(b, heard)
    a.radios[RadioKind.BLE].advertise_once(b"hello")
    kernel.run_until(1.0)
    assert heard == [(b"hello", 10.0)]


def test_broadcast_misses_out_of_range_receiver(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=31)  # beyond the 30 m BLE range
    heard = []
    _scan_all(b, heard)
    a.radios[RadioKind.BLE].advertise_once(b"hello")
    kernel.run_until(1.0)
    assert heard == []


def test_sender_does_not_hear_itself(kernel, medium, make_device):
    a = make_device("a", x=0)
    heard = []
    _scan_all(a, heard)
    a.radios[RadioKind.BLE].advertise_once(b"self")
    kernel.run_until(1.0)
    assert heard == []


def test_different_kinds_do_not_cross(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=1)
    heard = []
    _scan_all(b, heard)
    b.radios[RadioKind.WIFI].on_multicast(lambda payload, src: heard.append(payload))
    # A WiFi frame never reaches a BLE scanner and vice versa; medium
    # separates kinds structurally, checked via in_range.
    assert not medium.in_range(a.radios[RadioKind.BLE], b.radios[RadioKind.WIFI])


def test_in_range_respects_custom_propagation(kernel, world, make_device):
    from repro.radio.medium import Medium

    medium = Medium(kernel, world, propagation={RadioKind.BLE: UnitDisk(5.0)})
    # Note make_device fixture uses the default medium; build radios directly.
    from repro.phy.geometry import Position
    from repro.radio.base import Device
    from repro.radio.ble import BleRadio

    node_a = world.add_node("ca", position=Position(0, 0))
    node_b = world.add_node("cb", position=Position(6, 0))
    device_a, device_b = Device(kernel, node_a), Device(kernel, node_b)
    radio_a = BleRadio(device_a, medium)
    radio_b = BleRadio(device_b, medium)
    assert not medium.in_range(radio_a, radio_b)


def test_reachable_from_excludes_disabled(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    c = make_device("c", x=6, enable=False)
    reachable = medium.reachable_from(a.radios[RadioKind.BLE])
    names = {radio.device.name for radio in reachable}
    assert names == {"b"}


def test_delivery_recheck_after_airtime(kernel, medium, make_device):
    # A receiver disabled during a frame's airtime must not receive it.
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    heard = []
    _scan_all(b, heard)
    a.radios[RadioKind.BLE].advertise_once(b"x")
    b.radios[RadioKind.BLE].stop_scanning()  # before the airtime elapses
    kernel.run_until(1.0)
    assert heard == []


def test_frame_counters(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    heard = []
    _scan_all(b, heard)
    a.radios[RadioKind.BLE].advertise_once(b"x")
    kernel.run_until(1.0)
    assert medium.frames_sent == 1
    assert medium.frames_delivered == 1
    assert medium.frames_dropped == 0


def test_frames_dropped_counts_airtime_losses(kernel, medium, make_device):
    # A delivery scheduled at broadcast time but rejected at arrival (the
    # receiver stopped scanning during the airtime) lands in frames_dropped.
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    heard = []
    _scan_all(b, heard)
    a.radios[RadioKind.BLE].advertise_once(b"x")
    b.radios[RadioKind.BLE].stop_scanning()
    kernel.run_until(1.0)
    assert heard == []
    assert medium.frames_sent == 1
    assert medium.frames_delivered == 0
    assert medium.frames_dropped == 1


def test_broadcast_uses_spatial_pruning(kernel, medium, make_device):
    # Far-away radios must not even be distance-tested: the grid candidate
    # set for a BLE broadcast from the origin excludes them outright.
    a = make_device("a", x=0)
    make_device("b", x=10)
    make_device("far", x=5000)
    origin = a.radios[RadioKind.BLE].node.position
    candidates = medium._candidates(RadioKind.BLE, origin, 30.0)
    names = {radio.device.name for radio in candidates}
    assert "far" not in names
    assert "b" in names


def test_adhoc_mesh_is_singleton(medium):
    assert medium.adhoc_mesh() is medium.adhoc_mesh()
    assert medium.adhoc_mesh().name == "adhoc"


def test_detach_removes_radio(kernel, medium, make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    medium.detach(b.radios[RadioKind.BLE])
    assert b.radios[RadioKind.BLE] not in medium.radios(RadioKind.BLE)


def test_radios_returns_an_immutable_snapshot(medium, make_device):
    """``Medium.radios`` hands out a tuple, not the live internal list:
    callers can neither mutate the attach registry (which would corrupt
    the RNG draw order) nor observe it shifting under iteration."""
    a = make_device("a", x=0)
    b = make_device("b", x=5)
    snapshot = medium.radios(RadioKind.BLE)
    assert isinstance(snapshot, tuple)
    assert a.radios[RadioKind.BLE] in snapshot
    # Detaching after the snapshot leaves the snapshot untouched.
    medium.detach(b.radios[RadioKind.BLE])
    assert b.radios[RadioKind.BLE] in snapshot
    assert b.radios[RadioKind.BLE] not in medium.radios(RadioKind.BLE)

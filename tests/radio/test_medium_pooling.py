"""Delivery-event pooling and the candidate-batch cache counters.

The batch pipeline's two allocation optimizations are observable without
touching delivery semantics: ``batch_cache_hits``/``batch_cache_misses``
count per-(timestamp, version) candidate-gather reuse, and the
``_Delivery``/``_BatchDelivery`` shells recycle through the medium's
pools — the same object identity serving successive transmissions.
"""

from __future__ import annotations

from repro.phy.geometry import Position
from repro.phy.world import World
from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.medium import Medium
from repro.sim.kernel import Kernel


def _population(vectorized, count=3, spacing=1.0):
    kernel = Kernel(seed=11)
    world = World(kernel)
    medium = Medium(kernel, world, vectorized=vectorized)
    heard = []
    radios = []
    for i in range(count):
        node = world.add_node(f"p{i}", position=Position(i * spacing, 0.0))
        device = Device(kernel, node)
        radio = device.add_radio(BleRadio(device, medium))
        radio.enable()
        radio.start_scanning(
            lambda payload, mac, distance, me=i: heard.append((me, payload))
        )
        radios.append(radio)
    return kernel, medium, radios, heard


def test_same_cell_senders_share_one_gather():
    kernel, medium, radios, _ = _population(vectorized=True)
    assert (medium.batch_cache_hits, medium.batch_cache_misses) == (0, 0)
    radios[0].advertise_once(b"a")
    assert (medium.batch_cache_hits, medium.batch_cache_misses) == (0, 1)
    # Same timestamp, same cell, no attach/move in between: pure hits.
    radios[1].advertise_once(b"b")
    radios[2].advertise_once(b"c")
    assert (medium.batch_cache_hits, medium.batch_cache_misses) == (2, 1)


def test_clock_advance_invalidates_the_batch_cache():
    kernel, medium, radios, _ = _population(vectorized=True)
    radios[0].advertise_once(b"a")
    kernel.run_until(1.0)
    radios[0].advertise_once(b"b")
    assert medium.batch_cache_misses == 2


def test_attach_invalidates_the_batch_cache():
    kernel, medium, radios, _ = _population(vectorized=True)
    radios[0].advertise_once(b"a")
    node = medium.world.add_node("late", position=Position(0.5, 0.0))
    device = Device(kernel, node)
    device.add_radio(BleRadio(device, medium)).enable()
    radios[0].advertise_once(b"b")
    # The new attach bumped the version: the second gather cannot reuse
    # the first (it would miss the new radio).
    assert (medium.batch_cache_hits, medium.batch_cache_misses) == (0, 2)


def test_batch_shells_recycle_through_the_pool():
    kernel, medium, radios, heard = _population(vectorized=True)
    assert medium._batch_pool == []
    radios[0].advertise_once(b"a")
    kernel.run_until(1.0)
    assert heard  # the broadcast actually delivered
    assert len(medium._batch_pool) == 1
    shell = medium._batch_pool[0]
    assert shell.receivers is None and shell.frame is None
    radios[1].advertise_once(b"b")
    # The scheduled event reused the recycled shell rather than allocating.
    assert medium._batch_pool == []
    kernel.run_until(2.0)
    assert medium._batch_pool == [shell]


def test_scalar_shells_recycle_through_the_pool():
    kernel, medium, radios, heard = _population(vectorized=False)
    radios[0].advertise_once(b"a")
    kernel.run_until(1.0)
    delivered = len([1 for _, payload in heard if payload == b"a"])
    assert delivered == 2  # both neighbors in range
    assert len(medium._delivery_pool) == 2
    shells = set(map(id, medium._delivery_pool))
    radios[1].advertise_once(b"b")
    assert medium._delivery_pool == []  # both shells back in flight
    kernel.run_until(2.0)
    assert set(map(id, medium._delivery_pool)) == shells


def test_counters_survive_on_scalar_medium_untouched():
    kernel, medium, radios, _ = _population(vectorized=False)
    radios[0].advertise_once(b"a")
    kernel.run_until(1.0)
    # The scalar loop never consults the batch cache.
    assert (medium.batch_cache_hits, medium.batch_cache_misses) == (0, 0)

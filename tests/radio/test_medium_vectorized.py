"""The vectorized broadcast pipeline is byte-identical to the scalar loop.

Three executions of the same seeded scenario — scalar reference
(``vectorized=False``), vectorized with numpy active, and vectorized on
the pure-Python fallback — must produce the same delivery records *and*
leave the medium's RNG stream in the same state (the draw-order contract:
one uniform per 0<p<1 candidate, ascending attach order, sender
excluded).  SoftDisk propagation makes the stochastic path load-bearing;
UnitDisk exercises the no-draw fast path.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.phy.geometry import Position
from repro.phy.mobility import RandomWaypoint, Static
from repro.phy.propagation import SoftDisk, UnitDisk
from repro.phy.world import World
from repro.radio.base import Device
from repro.radio.ble import BleRadio
from repro.radio.frame import RadioKind
from repro.radio.medium import Medium
from repro.sim.kernel import Kernel
from repro.util import array

NODE_COUNT = 60
ARENA_M = 150.0
ROUNDS = 3
STEP_S = 2.0


@contextmanager
def _python_backend():
    saved = array.numpy
    array.numpy = None
    try:
        yield
    finally:
        array.numpy = saved


def _run_scenario(vectorized: bool, propagation=None):
    """Seeded mixed Static/RandomWaypoint beacon scenario; returns the
    heard log, the medium counters, and a post-run RNG tail."""
    kernel = Kernel(seed=77)
    world = World(kernel)
    medium = Medium(kernel, world, propagation=propagation, vectorized=vectorized)
    heard = []
    radios = []
    for i in range(NODE_COUNT):
        if i % 3 == 0:
            mobility = Static(
                Position(
                    (i * 37.0) % ARENA_M, (i * 53.0) % ARENA_M
                )
            )
        else:
            mobility = RandomWaypoint(
                kernel.rng.child("vec-walk", str(i)),
                width=ARENA_M,
                height=ARENA_M,
                speed=1.0 + 0.1 * (i % 7),
            )
        node = world.add_node(f"v{i}", mobility=mobility)
        device = Device(kernel, node)
        radio = device.add_radio(BleRadio(device, medium))
        radio.enable()
        radio.start_scanning(
            lambda payload, mac, distance, me=i: heard.append(
                (kernel.now, me, payload, distance)
            )
        )
        radios.append(radio)
    for round_index in range(ROUNDS):
        kernel.run_until((round_index + 1) * STEP_S)
        for i, radio in enumerate(radios):
            radio.advertise_once(bytes([round_index, i]))
    kernel.run()
    counters = (
        medium.frames_sent,
        medium.frames_delivered,
        medium.frames_dropped,
    )
    # The draw-order contract's sharpest check: after identical runs the
    # medium RNG must sit at the identical stream position.
    tail = [medium.rng.random() for _ in range(5)]
    return heard, counters, tail


def _assert_three_way_parity(propagation):
    vec = _run_scenario(True, propagation)
    scalar = _run_scenario(False, propagation)
    with _python_backend():
        fallback = _run_scenario(True, propagation)
    assert vec[0] == scalar[0] == fallback[0]
    assert vec[1] == scalar[1] == fallback[1]
    assert vec[2] == scalar[2] == fallback[2]
    assert vec[1][1] > 0  # the layout actually delivered frames
    return vec


def test_unit_disk_parity_scalar_vectorized_fallback():
    vec = _assert_three_way_parity(None)
    # UnitDisk never draws: the RNG tail equals a virgin child stream's.
    virgin = Kernel(seed=77).rng.child("medium")
    assert vec[2] == [virgin.random() for _ in range(5)]


def test_soft_disk_parity_exercises_the_draw_path():
    propagation = {RadioKind.BLE: SoftDisk(inner=12.0, outer=30.0)}
    vec = _assert_three_way_parity(propagation)
    # SoftDisk's grey zone must actually have drawn: the tail diverges
    # from a virgin stream, proving the stochastic path ran (and matched).
    virgin = Kernel(seed=77).rng.child("medium")
    assert vec[2] != [virgin.random() for _ in range(5)]


def test_vectorized_is_the_default_and_scalar_is_reachable(kernel, world):
    assert Medium(kernel, world).vectorized is True
    assert Medium(kernel, world, vectorized=False).vectorized is False


def test_no_index_medium_falls_back_to_scalar_broadcast(kernel):
    """Without a spatial index there is no grid to batch over: the
    vectorized medium must quietly use the scalar loop and still deliver."""
    world = World(kernel, use_spatial_index=False)
    medium = Medium(kernel, world, use_spatial_index=False, vectorized=True)
    a_node = world.add_node("a", position=Position(0.0, 0.0))
    b_node = world.add_node("b", position=Position(10.0, 0.0))
    heard = []
    for name, node in (("a", a_node), ("b", b_node)):
        device = Device(kernel, node)
        radio = device.add_radio(BleRadio(device, medium))
        radio.enable()
        if name == "b":
            radio.start_scanning(
                lambda payload, mac, distance: heard.append((payload, distance))
            )
        else:
            sender = radio
    sender.advertise_once(b"ping")
    kernel.run_until(1.0)
    assert heard == [(b"ping", 10.0)]


def test_unit_disk_boundary_is_inclusive_both_paths(kernel):
    """A receiver at exactly the UnitDisk radius hears the frame under
    both pipelines (<= comparison, no float drift)."""
    for vectorized in (True, False):
        k = Kernel(seed=3)
        w = World(k)
        m = Medium(k, w, vectorized=vectorized)
        radius = UnitDisk(30.0).radius
        sender_node = w.add_node("s", position=Position(0.0, 0.0))
        edge_node = w.add_node("e", position=Position(radius, 0.0))
        sd = Device(k, sender_node)
        ed = Device(k, edge_node)
        tx = sd.add_radio(BleRadio(sd, m))
        rx = ed.add_radio(BleRadio(ed, m))
        tx.enable()
        rx.enable()
        heard = []
        rx.start_scanning(
            lambda payload, mac, distance: heard.append(distance)
        )
        tx.advertise_once(b"edge")
        k.run_until(1.0)
        assert heard == [radius]

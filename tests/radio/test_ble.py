"""BLE radio: advertising, scanning, energy."""

import pytest

from repro.energy.constants import BLE_ADVERTISE_MA, BLE_SCAN_MA
from repro.radio.ble import (
    ADV_EVENT_DURATION_S,
    ADV_PAYLOAD_LIMIT,
    ScanConfig,
)
from repro.radio.frame import RadioKind


@pytest.fixture
def pair(make_device):
    a = make_device("a", x=0)
    b = make_device("b", x=10)
    return a.radio(RadioKind.BLE), b.radio(RadioKind.BLE)


def test_periodic_advertising_delivers_each_interval(kernel, pair):
    tx, rx = pair
    heard = []
    rx.start_scanning(lambda payload, mac, dist: heard.append(kernel.now))
    tx.start_advertising(b"beacon", interval_s=0.5, jitter_fraction=0.0)
    kernel.run_until(2.6)
    # Events at 0, 0.5, 1.0, 1.5, 2.0, 2.5 (+1 ms airtime each).
    assert len(heard) == 6
    assert heard[0] == pytest.approx(0.001, abs=1e-4)


def test_payload_limit_enforced(pair):
    tx, _rx = pair
    with pytest.raises(ValueError, match="limit is 31"):
        tx.advertise_once(bytes(ADV_PAYLOAD_LIMIT + 1))


def test_advertising_set_update_changes_payload(kernel, pair):
    tx, rx = pair
    heard = []
    rx.start_scanning(lambda payload, mac, dist: heard.append(payload))
    adv = tx.start_advertising(b"old", interval_s=0.5, jitter_fraction=0.0)
    kernel.run_until(0.7)
    adv.update(payload=b"new")
    kernel.run_until(1.2)
    assert b"old" in heard and heard[-1] == b"new"


def test_advertising_set_stop(kernel, pair):
    tx, rx = pair
    heard = []
    rx.start_scanning(lambda payload, mac, dist: heard.append(payload))
    adv = tx.start_advertising(b"x", interval_s=0.5, jitter_fraction=0.0)
    kernel.run_until(1.1)
    count = len(heard)
    adv.stop()
    adv.stop()  # idempotent
    kernel.run_until(5.0)
    assert len(heard) == count


def test_multiple_concurrent_advertising_sets(kernel, pair):
    tx, rx = pair
    heard = set()
    rx.start_scanning(lambda payload, mac, dist: heard.add(payload))
    tx.start_advertising(b"one", interval_s=0.5)
    tx.start_advertising(b"two", interval_s=0.5)
    kernel.run_until(2.0)
    assert heard == {b"one", b"two"}


def test_sender_mac_is_reported(kernel, pair):
    tx, rx = pair
    macs = []
    rx.start_scanning(lambda payload, mac, dist: macs.append(mac))
    tx.advertise_once(b"id")
    kernel.run_until(0.1)
    assert macs == [tx.address]


def test_scanning_requires_enabled(kernel, pair):
    tx, rx = pair
    rx.disable()
    with pytest.raises(RuntimeError):
        rx.start_scanning(lambda *args: None)


def test_advertising_requires_enabled(pair):
    tx, _ = pair
    tx.disable()
    with pytest.raises(RuntimeError):
        tx.advertise_once(b"x")


def test_double_scan_rejected(pair):
    _, rx = pair
    rx.start_scanning(lambda *args: None)
    with pytest.raises(RuntimeError, match="already scanning"):
        rx.start_scanning(lambda *args: None)


def test_scan_energy_is_continuous_ble_scan_draw(kernel, pair):
    _, rx = pair
    meter = rx.device.meter
    snapshot = meter.snapshot()
    rx.start_scanning(lambda *args: None)
    kernel.run_until(10.0)
    # Relative to the WiFi standby on the same device.
    from repro.energy.constants import WIFI_STANDBY_MA

    assert snapshot.average_ma(WIFI_STANDBY_MA) == pytest.approx(BLE_SCAN_MA, rel=0.01)


def test_advertise_energy_pulse(kernel, make_device):
    device = make_device("solo", radios=("ble",))
    radio = device.radio(RadioKind.BLE)
    snapshot = device.meter.snapshot()
    radio.advertise_once(b"x")
    kernel.run_until(1.0)
    expected = BLE_ADVERTISE_MA * ADV_EVENT_DURATION_S
    assert snapshot.charge_since() == pytest.approx(expected)


def test_duty_cycled_scanning_reduces_draw_and_hears_less(kernel, make_device):
    a = make_device("a", x=0, radios=("ble",))
    b = make_device("b", x=5, radios=("ble",))
    rx = b.radio(RadioKind.BLE)
    heard = []
    rx.start_scanning(lambda payload, mac, dist: heard.append(payload),
                      config=ScanConfig(window_s=0.1, interval_s=1.0))
    assert b.meter.current_ma == pytest.approx(BLE_SCAN_MA * 0.1)
    a.radio(RadioKind.BLE).start_advertising(b"x", interval_s=0.1,
                                             jitter_fraction=0.0)
    kernel.run_until(50.0)
    sent = a.radio(RadioKind.BLE).adv_events_sent
    # Roughly 10% of events land in the scan window.
    assert 0.02 < len(heard) / sent < 0.3


def test_disable_stops_everything(kernel, pair):
    tx, rx = pair
    rx.start_scanning(lambda *args: None)
    tx.start_advertising(b"x", interval_s=0.5)
    tx.disable()
    rx.disable()
    assert not rx.scanning
    assert rx.device.meter.active_components().get("ble.scan") is None
    kernel.run_until(2.0)
    assert tx.adv_events_sent <= 1


def test_stop_scanning_idempotent(pair):
    _, rx = pair
    rx.stop_scanning()
    rx.start_scanning(lambda *args: None)
    rx.stop_scanning()
    rx.stop_scanning()
    assert not rx.scanning

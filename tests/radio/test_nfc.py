"""NFC radio: contact-range exchanges."""

import pytest

from repro.radio.frame import RadioKind
from repro.radio.nfc import NFC_PAYLOAD_LIMIT


@pytest.fixture
def touching(make_device):
    a = make_device("a", x=0.0, radios=("nfc",))
    b = make_device("b", x=0.05, radios=("nfc",))  # 5 cm: in contact range
    return a.radio(RadioKind.NFC), b.radio(RadioKind.NFC)


def test_exchange_delivered_at_contact_range(kernel, touching):
    a, b = touching
    heard = []
    b.start_polling(lambda payload, addr, dist: heard.append(payload))
    a.exchange(b"tap")
    kernel.run_until(1.0)
    assert heard == [b"tap"]


def test_exchange_misses_beyond_contact(kernel, make_device):
    a = make_device("a", x=0.0, radios=("nfc",))
    b = make_device("b", x=1.0, radios=("nfc",))  # one meter: too far
    heard = []
    b.radio(RadioKind.NFC).start_polling(lambda p, addr, d: heard.append(p))
    a.radio(RadioKind.NFC).exchange(b"tap")
    kernel.run_until(1.0)
    assert heard == []


def test_non_polling_receiver_misses(kernel, touching):
    a, b = touching
    a.exchange(b"tap")
    kernel.run_until(1.0)
    assert b.exchanges_heard == 0


def test_payload_limit(touching):
    a, _ = touching
    with pytest.raises(ValueError):
        a.exchange(bytes(NFC_PAYLOAD_LIMIT + 1))


def test_polling_draw_and_stop(kernel, touching):
    _, b = touching
    b.start_polling(lambda *args: None)
    assert b.device.meter.active_components().get("nfc.poll", 0) > 0
    b.stop_polling()
    assert "nfc.poll" not in b.device.meter.active_components()
    b.stop_polling()  # idempotent


def test_double_polling_rejected(touching):
    _, b = touching
    b.start_polling(lambda *args: None)
    with pytest.raises(RuntimeError):
        b.start_polling(lambda *args: None)


def test_disable_stops_polling(touching):
    _, b = touching
    b.start_polling(lambda *args: None)
    b.disable()
    assert not b.polling
    assert not b.enabled

"""Delivery-time semantics of the batch pipeline's new fast paths.

The batch delivery event may skip its acceptance re-check (state
versioning), collapse per-receiver dispatch into one ``deliver_batch``
call (mono-class registry), and drop the duty-cycle branch from that
loop (duty-cycled-scanner counter) — each elision is only legal when it
is provably unobservable.  These tests pin the observable side: in-flight
state changes still drop frames exactly like the scalar reference,
elided re-checks really are elided, scalar-only subclass overrides still
run, and duty-cycled scanning stays byte-identical across backends.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.phy.geometry import Position
from repro.phy.mobility import Static
from repro.phy.world import World
from repro.radio.base import Device, Radio
from repro.radio.ble import BleRadio, ScanConfig
from repro.radio.medium import Medium
from repro.sim.kernel import Kernel
from repro.util import array


@contextmanager
def _python_backend():
    saved = array.numpy
    array.numpy = None
    try:
        yield
    finally:
        array.numpy = saved


class _CountingMedium(Medium):
    """Counts acceptance-stage invocations to observe re-check elision."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.acceptance_calls = 0

    def _acceptance_mask(self, *args, **kwargs):
        self.acceptance_calls += 1
        return super()._acceptance_mask(*args, **kwargs)


def _line_of_radios(kernel, medium, count, spacing=5.0, radio_cls=BleRadio):
    world = medium.world
    radios = []
    for i in range(count):
        node = world.add_node(
            f"n{i}", mobility=Static(Position(i * spacing, 0.0))
        )
        device = Device(kernel, node)
        radio = device.add_radio(radio_cls(device, medium))
        radio.enable()
        radios.append(radio)
    return radios


def _fresh_line(vectorized, medium_cls=Medium, count=4):
    kernel = Kernel(seed=11)
    world = World(kernel)
    medium = medium_cls(kernel, world, vectorized=vectorized)
    radios = _line_of_radios(kernel, medium, count)
    return kernel, medium, radios


def test_stop_scanning_in_flight_forces_recheck_and_drop():
    """A receiver that stops scanning during the frame's airtime is
    dropped at delivery time — the versioned re-check elision must notice
    the state change — with counters matching the scalar reference."""
    outcomes = []
    for vectorized in (True, False):
        kernel, medium, radios = _fresh_line(vectorized)
        heard = []
        for i, radio in enumerate(radios[1:], start=1):
            radio.start_scanning(
                lambda payload, mac, distance, me=i: heard.append(me)
            )
        count = radios[0].advertise_once(b"hi")
        assert count == len(radios) - 1
        # The frame is in flight (airtime ~1 ms); radio 2 stops listening
        # before it lands.
        kernel.call_in(0.0002, radios[2].stop_scanning)
        kernel.run_until(1.0)
        outcomes.append(
            (sorted(heard), medium.frames_delivered, medium.frames_dropped)
        )
    assert outcomes[0] == outcomes[1]
    heard, delivered, dropped = outcomes[0]
    assert heard == [1, 3]
    assert delivered == 2
    assert dropped == 1


def test_unchanged_state_elides_the_delivery_recheck():
    """With no acceptance-state churn between scheduling and arrival, the
    acceptance mask runs once per broadcast (the pre-filter); a churned
    medium re-checks at delivery time too."""
    kernel, medium, radios = _fresh_line(True, medium_cls=_CountingMedium)
    for radio in radios[1:]:
        radio.start_scanning(lambda payload, mac, distance: None)
    medium.acceptance_calls = 0
    radios[0].advertise_once(b"quiet")
    kernel.run_until(1.0)
    assert medium.acceptance_calls == 1

    medium.acceptance_calls = 0
    radios[0].advertise_once(b"churned")
    kernel.call_in(0.0002, radios[3].stop_scanning)
    kernel.run_until(2.0)
    assert medium.acceptance_calls == 2


def test_deliver_batch_falls_back_for_scalar_only_overrides():
    """A subclass that overrides ``_deliver`` without a batch twin must
    still have its override run per receiver — ``deliver_batch`` detects
    the redefinition and delegates elementwise."""
    log = []

    class TracingBle(BleRadio):
        def _deliver(self, frame, distance):
            log.append((self.device.name, distance))
            super()._deliver(frame, distance)

    kernel = Kernel(seed=11)
    world = World(kernel)
    medium = Medium(kernel, world, vectorized=True)
    radios = _line_of_radios(kernel, medium, 3, radio_cls=TracingBle)
    heard = []
    for radio in radios[1:]:
        radio.start_scanning(
            lambda payload, mac, distance: heard.append(payload)
        )
    radios[0].advertise_once(b"traced")
    kernel.run_until(1.0)
    assert log == [("n1", 5.0), ("n2", 10.0)]
    assert heard == [b"traced", b"traced"]


def test_duty_cycled_scanner_counter_tracks_scan_lifecycle():
    kernel, medium, radios = _fresh_line(True)
    assert medium._duty_cycled_scanners == 0
    radios[1].start_scanning(lambda *a: None)  # continuous: not counted
    assert medium._duty_cycled_scanners == 0
    radios[2].start_scanning(
        lambda *a: None, ScanConfig(window_s=0.25, interval_s=1.0)
    )
    assert medium._duty_cycled_scanners == 1
    radios[3].start_scanning(
        lambda *a: None, ScanConfig(window_s=0.5, interval_s=1.0)
    )
    assert medium._duty_cycled_scanners == 2
    radios[2].stop_scanning()
    assert medium._duty_cycled_scanners == 1
    radios[3].disable()  # disable routes through stop_scanning
    assert medium._duty_cycled_scanners == 0
    radios[1].stop_scanning()  # full-duty stop never decrements
    assert medium._duty_cycled_scanners == 0


def test_duty_cycled_scanning_parity_across_paths():
    """Mixed duty cycles exercise the full per-receiver loop (scan-window
    RNG rolls) instead of the counter-gated lean one; records, counters,
    and every radio's frames_heard must match the scalar reference on
    both backends."""

    def run(vectorized):
        kernel = Kernel(seed=29)
        world = World(kernel)
        medium = Medium(kernel, world, vectorized=vectorized)
        radios = _line_of_radios(kernel, medium, 8, spacing=3.0)
        heard = []
        for i, radio in enumerate(radios):
            config = (
                ScanConfig(window_s=0.5, interval_s=1.0)
                if i % 2
                else ScanConfig()
            )
            radio.start_scanning(
                lambda payload, mac, distance, me=i: heard.append(
                    (me, payload, distance)
                ),
                config,
            )
        for round_index in range(3):
            kernel.run_until(float(round_index))
            for i, radio in enumerate(radios):
                radio.advertise_once(bytes([round_index, i]))
        kernel.run_until(5.0)
        return (
            heard,
            medium.frames_delivered,
            medium.frames_dropped,
            [radio.frames_heard for radio in radios],
        )

    vec = run(True)
    scalar = run(False)
    with _python_backend():
        fallback = run(True)
    assert vec == scalar == fallback
    heard = vec[0]
    assert heard  # deliveries happened
    # Duty-cycled radios actually missed some frames (the RNG path ran):
    # an odd-indexed radio heard fewer than the continuous ones.
    heard_by = vec[3]
    assert min(heard_by[1::2]) < min(heard_by[0::2])

"""Property suite: ``accepts_mask`` == per-receiver ``_accepts_frame``.

The batch acceptance contract (:meth:`repro.radio.base.Radio.accepts_mask`)
defines the mask as the elementwise application of the scalar reference —
exact equality for every radio class, every frame kind, and every
reachable radio state.  These properties churn seeded populations through
the public state machines (enable/disable, scanning start/stop, mesh
join/leave, monitor windows driven to their exact closing edge) and
compare the two surfaces under both the numpy and pure-Python backends,
plus through the medium's grouping seam (``Medium._acceptance_mask``)
over heterogeneous receiver lists.
"""

from __future__ import annotations

from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.phy.geometry import Position
from repro.phy.world import World
from repro.radio.base import Device, Radio
from repro.radio.ble import BleRadio
from repro.radio.frame import Frame, FrameKind
from repro.radio.medium import Medium
from repro.radio.nfc import NfcRadio
from repro.radio.wifi import WifiRadio
from repro.sim.kernel import Kernel
from repro.sim.sharded.shard import MirrorRadio
from repro.util import array

DEVICE_COUNT = 6

#: One churn step: (device index, operation).  Operations that are not
#: legal in the current state (e.g. scanning while disabled) are skipped,
#: so any generated sequence is executable.
_OPERATIONS = (
    "ble_toggle", "ble_scan_on", "ble_scan_off",
    "wifi_toggle", "wifi_listen_on", "wifi_listen_off",
    "wifi_join_a", "wifi_join_b", "wifi_leave",
    "wifi_monitor", "wifi_advance_to_edge",
    "nfc_toggle", "nfc_poll_on", "nfc_poll_off",
    "advance",
)


@contextmanager
def _python_backend():
    saved = array.numpy
    array.numpy = None
    try:
        yield
    finally:
        array.numpy = saved


def _build_population():
    kernel = Kernel(seed=4242)
    world = World(kernel)
    medium = Medium(kernel, world, vectorized=True)
    devices = []
    for i in range(DEVICE_COUNT):
        node = world.add_node(f"dev-{i}", position=Position(float(i), 0.0))
        device = Device(kernel, node)
        device.add_radio(BleRadio(device, medium))
        device.add_radio(WifiRadio(device, medium))
        device.add_radio(NfcRadio(device, medium))
        devices.append(device)
    mesh_a = medium.adhoc_mesh()
    from repro.net.mesh import MeshNetwork

    mesh_b = MeshNetwork(kernel, "mesh-b")
    return kernel, medium, devices, (mesh_a, mesh_b)


def _noop_handler(*args) -> None:
    pass


def _apply(kernel, devices, meshes, step) -> None:
    index, op = step
    device = devices[index]
    ble = device.radios[BleRadio.kind]
    wifi = device.radios[WifiRadio.kind]
    nfc = device.radios[NfcRadio.kind]
    if op == "ble_toggle":
        ble.disable() if ble.enabled else ble.enable()
    elif op == "ble_scan_on":
        if ble.enabled and not ble.scanning:
            ble.start_scanning(_noop_handler)
    elif op == "ble_scan_off":
        ble.stop_scanning()
    elif op == "wifi_toggle":
        wifi.disable() if wifi.enabled else wifi.enable()
    elif op == "wifi_listen_on":
        wifi.on_multicast(_noop_handler)
    elif op == "wifi_listen_off":
        wifi.on_multicast(None)
    elif op in ("wifi_join_a", "wifi_join_b"):
        if wifi.enabled:
            mesh = meshes[0] if op == "wifi_join_a" else meshes[1]
            wifi.join(mesh, fast=True)
            kernel.run_for(0.01)  # let the fast peering complete
    elif op == "wifi_leave":
        wifi.leave()
    elif op == "wifi_monitor":
        if wifi.enabled:
            wifi.open_monitor_window(0.5, _noop_handler)
    elif op == "wifi_advance_to_edge":
        # Land the clock exactly on the window bound: `monitoring` is a
        # strict <, so the mask must already read False here.
        if wifi._monitor_until > kernel.now:
            kernel.run_until(wifi._monitor_until)
    elif op == "nfc_toggle":
        nfc.disable() if nfc.enabled else nfc.enable()
    elif op == "nfc_poll_on":
        if nfc.enabled and not nfc.polling:
            nfc.start_polling(_noop_handler)
    elif op == "nfc_poll_off":
        nfc.stop_polling()
    elif op == "advance":
        kernel.run_for(0.125)


def _frames_under_test(devices, now):
    sender_ble = devices[0].radios[BleRadio.kind]
    sender_wifi = devices[0].radios[WifiRadio.kind]
    sender_nfc = devices[0].radios[NfcRadio.kind]
    return [
        Frame(FrameKind.BLE_ADVERTISEMENT, sender_ble, b"adv", now),
        Frame(FrameKind.WIFI_MULTICAST, sender_wifi, b"mc", now,
              meta={"mesh": "adhoc"}),
        Frame(FrameKind.WIFI_MULTICAST, sender_wifi, b"mc", now,
              meta={"mesh": "mesh-b"}),
        Frame(FrameKind.WIFI_MULTICAST, sender_wifi, b"mc", now),
        Frame(FrameKind.WIFI_UNICAST, sender_wifi, b"uc", now),
        Frame(FrameKind.NFC_EXCHANGE, sender_nfc, b"tap", now),
    ]


def _assert_parity(medium, kernel, devices) -> None:
    now = kernel.now
    by_class = {
        BleRadio: [d.radios[BleRadio.kind] for d in devices],
        WifiRadio: [d.radios[WifiRadio.kind] for d in devices],
        NfcRadio: [d.radios[NfcRadio.kind] for d in devices],
    }
    mixed = [radio for group in by_class.values() for radio in group]
    for frame in _frames_under_test(devices, now):
        for cls, group in by_class.items():
            expected = [radio._accepts_frame(frame) for radio in group]
            assert list(cls.accepts_mask(group, frame, now)) == expected
        expected = [radio._accepts_frame(frame) for radio in mixed]
        assert medium._acceptance_mask(mixed, frame, now) == expected


@settings(max_examples=30, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=DEVICE_COUNT - 1),
            st.sampled_from(_OPERATIONS),
        ),
        max_size=30,
    )
)
def test_accepts_mask_matches_scalar_under_churn(steps):
    kernel, medium, devices, meshes = _build_population()
    for device in devices:
        for radio in device.radios.values():
            radio.enable()
    for step in steps:
        _apply(kernel, devices, meshes, step)
    _assert_parity(medium, kernel, devices)
    with _python_backend():
        _assert_parity(medium, kernel, devices)


def test_monitor_window_edge_is_strict(make_device, kernel):
    device = make_device("edge", radios=("wifi",))
    wifi = device.radios[WifiRadio.kind]
    wifi.open_monitor_window(1.0, _noop_handler)
    frame = Frame(FrameKind.WIFI_MULTICAST, wifi, b"mc", kernel.now)
    until = wifi._monitor_until
    # One instant before the bound: monitoring accepts the frame.
    assert wifi._accepts_frame(frame) is True
    assert WifiRadio.accepts_mask([wifi], frame, kernel.now) == [True]
    kernel.run_until(until)
    # Exactly at the bound the strict < closes the window — on both
    # surfaces, with the mask taking `now` as its time authority.
    assert wifi._accepts_frame(frame) is False
    assert WifiRadio.accepts_mask([wifi], frame, kernel.now) == [False]


def test_custom_scalar_override_uses_delegating_mask(kernel, world, medium):
    class PickyBle(BleRadio):
        def _accepts_frame(self, frame):
            return (
                super()._accepts_frame(frame) and len(frame.payload) < 4
            )

    node = world.add_node("picky", position=Position(0.0, 0.0))
    device = Device(kernel, node)
    radio = device.add_radio(PickyBle(device, medium))
    radio.enable()
    radio.start_scanning(_noop_handler)
    short = Frame(FrameKind.BLE_ADVERTISEMENT, radio, b"abc", 0.0)
    long = Frame(FrameKind.BLE_ADVERTISEMENT, radio, b"abcdef", 0.0)
    # The subclass overrode the scalar reference without a batch twin:
    # the inherited accepts_mask must delegate elementwise, never apply
    # BleRadio's packed logic.
    assert PickyBle.accepts_mask([radio], short, 0.0) == [True]
    assert PickyBle.accepts_mask([radio], long, 0.0) == [False]
    assert medium._acceptance_mask([radio], long, 0.0) == [False]


def test_duck_typed_receiver_without_mask_uses_scalar_loop(medium):
    class DuckRadio:
        kind = BleRadio.kind
        is_mirror = False

        def __init__(self, accepts):
            self._accepts = accepts

        def _accepts_frame(self, frame):
            return self._accepts

    frame = Frame(FrameKind.BLE_ADVERTISEMENT, None, b"x", 0.0)
    ducks = [DuckRadio(True), DuckRadio(False), DuckRadio(True)]
    assert medium._acceptance_mask(ducks, frame, 0.0) == [True, False, True]


def test_mirror_radio_mask_matches_scalar():
    accepted = Frame(FrameKind.BLE_ADVERTISEMENT, None, b"x", 0.0)
    rejected = Frame(FrameKind.NFC_EXCHANGE, None, b"x", 0.0)
    mirrors = [object.__new__(MirrorRadio) for _ in range(3)]
    for frame in (accepted, rejected):
        expected = [MirrorRadio._accepts_frame(m, frame) for m in mirrors]
        assert MirrorRadio.accepts_mask(mirrors, frame, 0.0) == expected


def test_base_default_mask_delegates_elementwise(kernel, world, medium):
    node = world.add_node("plain", position=Position(0.0, 0.0))
    device = Device(kernel, node)

    class PlainRadio(Radio):
        kind = BleRadio.kind

        def _deliver(self, frame, distance):
            pass

    radios = [PlainRadio(device, medium) for _ in range(3)]
    radios[1].enable()
    frame = Frame(FrameKind.BLE_ADVERTISEMENT, None, b"x", 0.0)
    assert Radio.accepts_mask(radios, frame, 0.0) == [False, True, False]

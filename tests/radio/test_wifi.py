"""WiFi radio: scan, join/peering, unicast, multicast, energy."""

import pytest

from repro.energy.constants import (
    WIFI_CONNECT_MA,
    WIFI_SCAN_MA,
    WIFI_STANDBY_MA,
)
from repro.net.mesh import MeshNetwork
from repro.net.payload import VirtualPayload
from repro.radio.frame import RadioKind
from repro.radio.wifi import (
    FAST_PEERING_S,
    FULL_CONNECT_S,
    SCAN_DURATION_S,
    TCP_HANDSHAKE_S,
    WifiError,
)


@pytest.fixture
def wifi_pair(kernel, make_device, mesh):
    a = make_device("a", x=0)
    b = make_device("b", x=10)
    return a.radio(RadioKind.WIFI), b.radio(RadioKind.WIFI)


class TestStandby:
    def test_enable_sets_standby_draw(self, make_device):
        device = make_device("a")
        assert device.meter.active_components()["wifi.standby"] == WIFI_STANDBY_MA

    def test_disable_removes_standby(self, make_device):
        device = make_device("a")
        device.radio(RadioKind.WIFI).disable()
        assert "wifi.standby" not in device.meter.active_components()


class TestScan:
    def test_scan_finds_mesh_with_in_range_member(self, kernel, wifi_pair, mesh):
        a, b = wifi_pair
        kernel.run_until_complete(b.join(mesh))
        found = kernel.run_until_complete(a.scan())
        assert found == [mesh]

    def test_scan_misses_empty_surroundings(self, kernel, wifi_pair):
        a, _b = wifi_pair
        assert kernel.run_until_complete(a.scan()) == []

    def test_scan_misses_out_of_range_mesh(self, kernel, make_device, mesh):
        a = make_device("a", x=0)
        far = make_device("far", x=500)
        kernel.run_until_complete(far.radio(RadioKind.WIFI).join(mesh))
        assert kernel.run_until_complete(a.radio(RadioKind.WIFI).scan()) == []

    def test_scan_duration_and_energy(self, kernel, wifi_pair):
        a, _ = wifi_pair
        snapshot = a.device.meter.snapshot()
        completion = a.scan()
        kernel.run_until_complete(completion)
        assert kernel.now == pytest.approx(SCAN_DURATION_S)
        expected = WIFI_SCAN_MA * SCAN_DURATION_S + WIFI_STANDBY_MA * SCAN_DURATION_S
        assert snapshot.charge_since() == pytest.approx(expected)

    def test_scan_requires_enabled(self, wifi_pair):
        a, _ = wifi_pair
        a.disable()
        with pytest.raises(WifiError):
            a.scan()


class TestJoin:
    def test_full_join_duration_and_membership(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        kernel.run_until_complete(a.join(mesh))
        assert kernel.now == pytest.approx(FULL_CONNECT_S)
        assert a in mesh
        assert a.mesh is mesh
        assert a.peer_mode

    def test_fast_join_duration(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        kernel.run_until_complete(a.join(mesh, fast=True))
        assert kernel.now == pytest.approx(FAST_PEERING_S)

    def test_join_energy(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        snapshot = a.device.meter.snapshot()
        kernel.run_until_complete(a.join(mesh))
        connect_charge = snapshot.charge_since() - WIFI_STANDBY_MA * kernel.now
        assert connect_charge == pytest.approx(WIFI_CONNECT_MA * FULL_CONNECT_S)

    def test_rejoin_same_mesh_is_instant(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        kernel.run_until_complete(a.join(mesh))
        before = kernel.now
        kernel.run_until_complete(a.join(mesh))
        assert kernel.now == before

    def test_multicast_only_attachment_upgrade_costs_full_join(self, kernel,
                                                               wifi_pair, mesh):
        a, _ = wifi_pair
        kernel.run_until_complete(a.join(mesh, peer_mode=False))
        assert not a.peer_mode
        start = kernel.now
        kernel.run_until_complete(a.join(mesh, peer_mode=True))
        assert kernel.now - start == pytest.approx(FULL_CONNECT_S)
        assert a.peer_mode

    def test_join_new_mesh_leaves_old(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        other = MeshNetwork(kernel, "other")
        kernel.run_until_complete(a.join(mesh))
        kernel.run_until_complete(a.join(other))
        assert a not in mesh
        assert a in other

    def test_leave_resets_peer_mode(self, kernel, wifi_pair, mesh):
        a, _ = wifi_pair
        kernel.run_until_complete(a.join(mesh))
        a.leave()
        assert a.mesh is None
        assert not a.peer_mode
        assert a not in mesh


class TestUnicast:
    def _join_both(self, kernel, a, b, mesh):
        kernel.run_until_complete(a.join(mesh))
        kernel.run_until_complete(b.join(mesh))

    def test_transfer_time_matches_capacity(self, kernel, wifi_pair, mesh):
        a, b = wifi_pair
        self._join_both(kernel, a, b, mesh)
        b.on_unicast(lambda payload, src: None)
        start = kernel.now
        transfer = a.send_unicast(b.address, VirtualPayload(25_000_000))
        kernel.run_until_complete(transfer.completion)
        expected = TCP_HANDSHAKE_S + 25_000_000 / mesh.channel.capacity_bps
        assert kernel.now - start == pytest.approx(expected, rel=1e-6)

    def test_payload_delivered_to_handler(self, kernel, wifi_pair, mesh):
        a, b = wifi_pair
        self._join_both(kernel, a, b, mesh)
        got = []
        b.on_unicast(lambda payload, src: got.append((payload, src)))
        payload = VirtualPayload(1000, tag="file")
        kernel.run_until_complete(a.send_unicast(b.address, payload).completion)
        assert got == [(payload, a.address)]

    def test_concurrent_transfers_share_capacity(self, kernel, make_device, mesh):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        c = make_device("c", x=5, y=5)
        radios = [device.radio(RadioKind.WIFI) for device in (a, b, c)]
        for radio in radios:
            kernel.run_until_complete(radio.join(mesh))
        start = kernel.now
        size = 8_100_000  # 1 second alone
        t1 = radios[0].send_unicast(radios[1].address, VirtualPayload(size))
        t2 = radios[0].send_unicast(radios[2].address, VirtualPayload(size))
        kernel.run_until_complete(t2.completion, timeout=10)
        # Two flows share the channel: ~2 seconds for both.
        assert kernel.now - start == pytest.approx(2.0, rel=0.02)

    def test_unicast_without_mesh_fails(self, kernel, wifi_pair):
        a, b = wifi_pair
        transfer = a.send_unicast(b.address, b"data")
        with pytest.raises(WifiError, match="not joined"):
            kernel.run_until_complete(transfer.completion)

    def test_unicast_from_multicast_only_attachment_fails(self, kernel,
                                                          wifi_pair, mesh):
        a, b = wifi_pair
        kernel.run_until_complete(a.join(mesh, peer_mode=False))
        kernel.run_until_complete(b.join(mesh, peer_mode=False))
        transfer = a.send_unicast(b.address, b"data")
        with pytest.raises(WifiError, match="peering required"):
            kernel.run_until_complete(transfer.completion)

    def test_unicast_to_non_member_fails(self, kernel, wifi_pair, mesh):
        a, b = wifi_pair
        kernel.run_until_complete(a.join(mesh))
        transfer = a.send_unicast(b.address, b"data")
        with pytest.raises(WifiError, match="not a member"):
            kernel.run_until_complete(transfer.completion)

    def test_unicast_out_of_range_fails(self, kernel, make_device, mesh):
        a = make_device("a", x=0)
        b = make_device("b", x=400)
        ra, rb = a.radio(RadioKind.WIFI), b.radio(RadioKind.WIFI)
        kernel.run_until_complete(ra.join(mesh))
        kernel.run_until_complete(rb.join(mesh))
        transfer = ra.send_unicast(rb.address, b"data")
        with pytest.raises(WifiError, match="out of range"):
            kernel.run_until_complete(transfer.completion)

    def test_completed_transfer_grants_mutual_peering(self, kernel, make_device,
                                                      mesh):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        ra, rb = a.radio(RadioKind.WIFI), b.radio(RadioKind.WIFI)
        kernel.run_until_complete(ra.join(mesh))
        kernel.run_until_complete(rb.join(mesh, peer_mode=False))
        assert not rb.peer_mode
        kernel.run_until_complete(
            ra.send_unicast(rb.address, b"ping").completion
        )
        assert rb.peer_mode  # the receiver can now reply without a join


class TestMulticast:
    def test_control_packet_reaches_listening_members(self, kernel, make_device,
                                                      mesh):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        c = make_device("c", x=8)
        for device in (a, b, c):
            kernel.run_until_complete(
                device.radio(RadioKind.WIFI).join(mesh, peer_mode=False)
            )
        heard = []
        b.radio(RadioKind.WIFI).on_multicast(lambda p, src: heard.append(("b", p)))
        # c is a member but not listening.
        count = a.radio(RadioKind.WIFI).send_multicast(b"announce")
        kernel.run_until(kernel.now + 0.1)
        assert heard == [("b", b"announce")]
        assert count == 1

    def test_multicast_requires_membership(self, wifi_pair):
        a, _ = wifi_pair
        with pytest.raises(WifiError):
            a.send_multicast(b"x")

    def test_monitor_window_hears_without_membership(self, kernel, make_device,
                                                     mesh):
        a = make_device("a", x=0)
        sniffer = make_device("sniffer", x=5)
        kernel.run_until_complete(
            a.radio(RadioKind.WIFI).join(mesh, peer_mode=False)
        )
        heard = []
        sniffer.radio(RadioKind.WIFI).open_monitor_window(
            1.0, lambda p, src: heard.append(p)
        )
        a.radio(RadioKind.WIFI).send_multicast(b"beacon")
        kernel.run_until(kernel.now + 0.1)
        assert heard == [b"beacon"]
        assert sniffer.radio(RadioKind.WIFI).mesh is None

    def test_monitor_window_expires(self, kernel, make_device, mesh):
        a = make_device("a", x=0)
        sniffer = make_device("sniffer", x=5)
        kernel.run_until_complete(
            a.radio(RadioKind.WIFI).join(mesh, peer_mode=False)
        )
        heard = []
        sniffer.radio(RadioKind.WIFI).open_monitor_window(
            0.05, lambda p, src: heard.append(p)
        )
        kernel.run_until(kernel.now + 1.0)
        a.radio(RadioKind.WIFI).send_multicast(b"late")
        kernel.run_until(kernel.now + 0.1)
        assert heard == []

    def test_multicast_data_rides_slow_pool(self, kernel, make_device, mesh):
        a = make_device("a", x=0)
        b = make_device("b", x=5)
        ra, rb = a.radio(RadioKind.WIFI), b.radio(RadioKind.WIFI)
        kernel.run_until_complete(ra.join(mesh, peer_mode=False))
        kernel.run_until_complete(rb.join(mesh, peer_mode=False))
        got = []
        rb.on_multicast(lambda p, src: got.append(p))
        start = kernel.now
        size = 131_000  # one second at the multicast pool rate
        completion = ra.send_multicast_data(VirtualPayload(size))
        receivers = kernel.run_until_complete(completion, timeout=10)
        assert kernel.now - start == pytest.approx(1.0, rel=0.01)
        assert receivers == [rb]
        assert len(got) == 1

"""The transport-neutral application interface over Omni."""

import pytest

from repro.apps.transport import OmniTransport
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.net.payload import VirtualPayload
from repro.phy.geometry import Position


@pytest.fixture
def testbed():
    return Testbed(seed=55)


@pytest.fixture
def pair(testbed):
    transports = []
    for name, x in (("a", 0.0), ("b", 10.0)):
        device = testbed.add_device(name, position=Position(x, 0))
        transport = testbed.omni(device, OMNI_TECHS_BLE_WIFI)
        transport.start()
        transports.append(transport)
    return transports


def test_local_id_is_omni_address(pair):
    a, b = pair
    assert a.local_id == a.manager.omni_address.value
    assert a.local_id != b.local_id


def test_not_broadcast(pair):
    assert not pair[0].is_broadcast


def test_peers_after_discovery(testbed, pair):
    a, b = pair
    testbed.kernel.run_until(1.0)
    assert b.local_id in a.peers()


def test_metadata_flows_as_context(testbed, pair):
    a, b = pair
    heard = []
    b.on_metadata(lambda peer, payload: heard.append((peer, payload)))
    a.set_metadata(b"hello")
    testbed.kernel.run_until(2.0)
    assert (a.local_id, b"hello") in heard


def test_set_metadata_before_ack_keeps_latest(testbed, pair):
    a, b = pair
    heard = []
    b.on_metadata(lambda peer, payload: heard.append(payload))
    a.set_metadata(b"first")
    a.set_metadata(b"second")  # before the add_context ack arrives
    testbed.kernel.run_until(3.0)
    assert b"second" in heard


def test_set_metadata_after_ack_updates(testbed, pair):
    a, b = pair
    heard = []
    b.on_metadata(lambda peer, payload: heard.append(payload))
    a.set_metadata(b"one")
    testbed.kernel.run_until(2.0)
    a.set_metadata(b"two")
    testbed.kernel.run_until(4.0)
    assert heard[-1] == b"two"


def test_send_reports_success(testbed, pair):
    a, b = pair
    testbed.kernel.run_until(1.0)
    results = []
    received = []
    b.on_receive(lambda peer, payload: received.append(payload))
    a.send(b.local_id, b"data", lambda ok, detail: results.append((ok, detail)))
    testbed.kernel.run_until(2.0)
    assert results == [(True, "")]
    assert received == [b"data"]


def test_send_reports_failure_with_detail(testbed, pair):
    a, _ = pair
    results = []
    a.send(0xDEAD, VirtualPayload(100),
           lambda ok, detail: results.append((ok, detail)))
    testbed.kernel.run_until(1.0)
    assert results[0][0] is False
    assert results[0][1]  # human-readable reason

"""The Disseminate application over Omni transports."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.disseminate import (
    DisseminateNode,
    FilePlan,
    decode_metadata,
    encode_metadata,
)
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.phy.geometry import Position


class TestFilePlan:
    def test_chunk_sizes_sum_to_total(self):
        plan = FilePlan(30_000_000, 30)
        assert sum(plan.chunk_size(i) for i in range(30)) == 30_000_000

    def test_last_chunk_absorbs_remainder(self):
        plan = FilePlan(1003, 10)
        assert plan.chunk_size(0) == 100
        assert plan.chunk_size(9) == 103

    def test_invalid_plans(self):
        with pytest.raises(ValueError):
            FilePlan(100, 0)
        with pytest.raises(ValueError):
            FilePlan(100, 33)
        with pytest.raises(ValueError):
            FilePlan(3, 10)


class TestMetadataCodec:
    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_property_roundtrip(self, count, data):
        have = data.draw(st.sets(st.integers(min_value=0, max_value=count - 1)))
        assert decode_metadata(encode_metadata(count, have)) == have

    def test_fits_a_ble_context(self):
        # 6 bytes: well within the 18-byte BLE context budget.
        assert len(encode_metadata(30, set(range(30)))) == 6

    def test_alien_bytes_rejected(self):
        assert decode_metadata(b"") is None
        assert decode_metadata(bytes(10)) is None


class TestCollaboration:
    def _build(self, seed=5, rate=1_000_000.0):
        testbed = Testbed(seed=seed)
        plan = FilePlan(3_000_000, 6)  # small for test speed
        positions = [Position(0, 0), Position(8, 0), Position(4, 6)]
        nodes = []
        for index in range(3):
            device = testbed.add_device(f"d{index}", position=positions[index])
            transport = testbed.omni(device, OMNI_TECHS_BLE_WIFI)
            node = DisseminateNode(
                testbed.kernel, transport, testbed.infra, plan,
                assigned_chunks=[index * 2, index * 2 + 1],
                infra_rate_bps=rate, meter=device.meter,
            )
            nodes.append(node)
        return testbed, nodes

    def test_all_nodes_complete(self):
        testbed, nodes = self._build()
        for node in nodes:
            node.start()
        time = 0.0
        while time < 60 and not all(node.completed.done for node in nodes):
            time += 0.5
            testbed.kernel.run_until(time)
        assert all(node.completed.done for node in nodes)
        for node in nodes:
            assert node.have == set(range(6))

    def test_collaboration_uses_d2d(self):
        testbed, nodes = self._build()
        for node in nodes:
            node.start()
        testbed.kernel.run_until(30.0)
        # Most non-assigned chunks should arrive from peers, not infra.
        assert sum(node.chunks_from_peers for node in nodes) >= 6

    def test_collaboration_beats_solo_download(self):
        testbed, nodes = self._build(rate=100_000.0)
        for node in nodes:
            node.start()
        time = 0.0
        while time < 120 and not all(node.completed.done for node in nodes):
            time += 1.0
            testbed.kernel.run_until(time)
        solo_time = 3_000_000 / 100_000.0  # 30 s alone
        for node in nodes:
            assert node.completed_at < solo_time * 0.6

    def test_infra_fallback_completes_without_peers(self):
        testbed = Testbed(seed=6)
        plan = FilePlan(600_000, 6)
        device = testbed.add_device("solo", position=Position(0, 0))
        transport = testbed.omni(device, OMNI_TECHS_BLE_WIFI)
        node = DisseminateNode(testbed.kernel, transport, testbed.infra, plan,
                               assigned_chunks=[0, 1], infra_rate_bps=100_000.0,
                               meter=device.meter)
        node.start()
        testbed.kernel.run_until(10.0)
        assert node.completed.done
        assert node.chunks_from_infra == 6
        # Assigned chunks first, then index order.
        assert node.completed_at == pytest.approx(6.0)

    def test_start_is_idempotent(self):
        testbed, nodes = self._build()
        nodes[0].start()
        nodes[0].start()
        testbed.kernel.run_until(1.0)

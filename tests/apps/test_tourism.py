"""The smart-city tourism application."""

import pytest

from repro.apps.tourism import (
    AUDIO_SERVICE_PREFIX,
    LandmarkBeacon,
    TourGuide,
    TouristApp,
    VIZ_SERVICE_PREFIX,
)
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.phy.geometry import Position


@pytest.fixture
def city():
    testbed = Testbed(seed=44)

    def stack(name, x, y=0.0):
        device = testbed.add_device(name, position=Position(x, y))
        return testbed.omni_manager(device, OMNI_TECHS_BLE_WIFI)

    return testbed, stack


def test_tourist_discovers_and_fetches_visualization(city):
    testbed, stack = city
    landmark = LandmarkBeacon(stack("landmark", 5.0), "clock-tower",
                              visualization_bytes=2_000_000)
    tourist = TouristApp(stack("tourist", 0.0))
    landmark.start()
    tourist.start()
    testbed.kernel.run_until(10.0)
    assert landmark.requests_served == 1
    assert len(tourist.visualizations) == 1
    visualization = tourist.visualizations[0]
    assert visualization.landmark == "clock-tower"
    assert visualization.size == 2_000_000


def test_tourist_requests_each_landmark_once(city):
    testbed, stack = city
    landmark = LandmarkBeacon(stack("landmark", 5.0), "arch")
    tourist = TouristApp(stack("tourist", 0.0))
    landmark.start()
    tourist.start()
    testbed.kernel.run_until(20.0)
    assert landmark.requests_served == 1  # despite periodic re-advertising


def test_multiple_landmarks(city):
    testbed, stack = city
    landmarks = [
        LandmarkBeacon(stack("landmark-1", 5.0), "gate", visualization_bytes=500_000),
        LandmarkBeacon(stack("landmark-2", 0.0, 8.0), "bridge",
                       visualization_bytes=500_000),
    ]
    tourist = TouristApp(stack("tourist", 0.0))
    for landmark in landmarks:
        landmark.start()
    tourist.start()
    testbed.kernel.run_until(15.0)
    assert {v.landmark for v in tourist.visualizations} == {"gate", "bridge"}


def test_audio_streaming_to_subscribers(city):
    testbed, stack = city
    guide = TourGuide(stack("guide", 5.0), chunk_bytes=10_000, chunk_interval_s=1.0)
    tourist = TouristApp(stack("tourist", 0.0))
    guide.start()
    tourist.start()
    testbed.kernel.run_until(12.0)
    assert tourist.subscribed_to is not None
    assert tourist.audio_chunks >= 8
    guide.stop()
    testbed.kernel.run_until(12.5)  # let any in-flight chunk land
    count = tourist.audio_chunks
    testbed.kernel.run_until(16.0)
    assert tourist.audio_chunks == count


def test_landmark_name_length_checked(city):
    testbed, stack = city
    with pytest.raises(ValueError):
        LandmarkBeacon(stack("landmark", 5.0), "a" * 30)


def test_visualization_callback(city):
    testbed, stack = city
    landmark = LandmarkBeacon(stack("landmark", 5.0), "fort",
                              visualization_bytes=100_000)
    tourist = TouristApp(stack("tourist", 0.0))
    seen = []
    tourist.on_visualization = seen.append
    landmark.start()
    tourist.start()
    testbed.kernel.run_until(10.0)
    assert seen and seen[0].landmark == "fort"

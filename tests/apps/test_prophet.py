"""PRoPHET router mechanics."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.prophet import (
    GAMMA,
    P_INIT,
    ProphetConfig,
    ProphetNode,
    decode_summary,
    encode_summary,
)
from repro.experiments.scenario import OMNI_TECHS_BLE_WIFI, Testbed
from repro.net.payload import VirtualPayload
from repro.phy.geometry import Position


class TestSummaryCodec:
    @given(
        st.dictionaries(st.integers(min_value=0, max_value=(1 << 64) - 1),
                        st.floats(min_value=0, max_value=1),
                        max_size=5),
        st.sets(st.integers(min_value=0, max_value=65535), max_size=5),
    )
    def test_property_roundtrip_quantized(self, entries, bundle_ids):
        predictabilities = sorted(entries.items())
        raw = encode_summary(predictabilities, sorted(bundle_ids))
        decoded = decode_summary(raw)
        assert decoded is not None
        decoded_predictabilities, decoded_bundles = decoded
        assert decoded_bundles == bundle_ids
        for dest, probability in predictabilities:
            assert decoded_predictabilities[dest] == pytest.approx(
                probability, abs=1 / 255
            )

    def test_typical_summary_fits_ble_context(self):
        raw = encode_summary([(0xFFFFFFFFFFFFFFFF, 0.9)], [17])
        assert len(raw) <= 18  # the BLE context budget

    def test_alien_bytes_rejected(self):
        assert decode_summary(b"") is None
        assert decode_summary(b"\x63\x00") is None  # wrong version

    def test_truncated_rejected(self):
        raw = encode_summary([(5, 0.5)], [1])
        assert decode_summary(raw[:-1]) is None


class TestPredictabilityTable:
    @pytest.fixture
    def node(self):
        testbed = Testbed(seed=8)
        device = testbed.add_device("n", position=Position(0, 0))
        transport = testbed.omni(device, OMNI_TECHS_BLE_WIFI)
        node = ProphetNode(testbed.kernel, transport)
        node.start()
        return testbed, node

    def test_unknown_peer_zero(self, node):
        _, router = node
        assert router.predictability_for(12345) == 0.0

    def test_encounter_raises_predictability(self, node):
        _, router = node
        router._credit_encounter(42)
        assert router.predictability_for(42) == pytest.approx(P_INIT)

    def test_repeated_encounters_converge_upward(self, node):
        testbed, router = node
        for round_index in range(10):
            testbed.kernel.run_until(testbed.kernel.now + 5.0)
            router._credit_encounter(42)
        # Encounters every refractory period push P well above a single
        # encounter's P_INIT even against aging (read right after a credit).
        assert router.predictability_for(42) > 0.9

    def test_refractory_limits_crediting(self, node):
        _, router = node
        router._credit_encounter(42)
        router._credit_encounter(42)  # same meeting, no extra credit
        assert router.predictability_for(42) == pytest.approx(P_INIT)

    def test_aging_decays_over_time(self, node):
        testbed, router = node
        router.seed_predictability(42, 0.8)
        testbed.kernel.run_until(testbed.kernel.now + 10.0)
        aged = router.predictability_for(42)
        assert aged == pytest.approx(0.8 * GAMMA ** 10, rel=0.01)

    def test_transitivity_raises_toward_remote_dest(self, node):
        _, router = node
        router._credit_encounter(42)  # P(self,42) = 0.75
        router._apply_transitivity(42, {99: 0.8})
        expected = 0.75 * 0.8 * 0.25
        assert router.predictability_for(99) == pytest.approx(expected, rel=0.01)

    def test_transitivity_never_lowers(self, node):
        _, router = node
        router.seed_predictability(99, 0.9)
        router._credit_encounter(42)
        router._apply_transitivity(42, {99: 0.1})
        assert router.predictability_for(99) > 0.85

    def test_predictability_bounded(self, node):
        _, router = node
        router.seed_predictability(42, 1.0)
        for _ in range(5):
            router._credit_encounter(42)
        assert 0.0 <= router.predictability_for(42) <= 1.0


class TestRouting:
    def _pair(self, seed=9):
        testbed = Testbed(seed=seed)
        routers = []
        for name, x in (("a", 0.0), ("b", 10.0)):
            device = testbed.add_device(name, position=Position(x, 0))
            transport = testbed.omni(device, OMNI_TECHS_BLE_WIFI)
            routers.append(ProphetNode(testbed.kernel, transport))
        for router in routers:
            router.start()
        return testbed, routers

    def test_direct_delivery_to_destination(self):
        testbed, (a, b) = self._pair()
        delivered = []
        b.on_delivered(lambda bundle: delivered.append(testbed.kernel.now))
        testbed.kernel.run_until(1.0)
        a.send_bundle(b.local_id, VirtualPayload(1000))
        testbed.kernel.run_until(3.0)
        assert delivered
        assert b.delivered[0].source_id == a.local_id

    def test_no_forwarding_to_worse_carrier(self):
        testbed, (a, b) = self._pair()
        testbed.kernel.run_until(1.0)
        # a is better positioned toward dest 999 than b.
        a.seed_predictability(999, 0.9)
        a.send_bundle(999, VirtualPayload(100))
        testbed.kernel.run_until(5.0)
        assert not b.buffer  # b never advertised better predictability

    def test_forwarding_to_better_carrier(self):
        testbed, (a, b) = self._pair()
        testbed.kernel.run_until(1.0)
        b.seed_predictability(999, 0.9)
        testbed.kernel.run_until(2.0)  # let b's summary propagate
        a.send_bundle(999, VirtualPayload(100))
        testbed.kernel.run_until(5.0)
        assert len(b.buffer) == 1

    def test_no_duplicate_forwarding(self):
        testbed, (a, b) = self._pair()
        testbed.kernel.run_until(1.0)
        b.seed_predictability(999, 0.9)
        testbed.kernel.run_until(2.0)
        a.send_bundle(999, VirtualPayload(100))
        testbed.kernel.run_until(20.0)
        # b's summaries now advertise the bundle id; a must not resend.
        assert len(b.buffer) == 1
        assert len(b.delivered) == 0

    def test_source_keeps_copy_after_forwarding(self):
        testbed, (a, b) = self._pair()
        testbed.kernel.run_until(1.0)
        b.seed_predictability(999, 0.9)
        testbed.kernel.run_until(2.0)
        a.send_bundle(999, VirtualPayload(100))
        testbed.kernel.run_until(5.0)
        assert len(a.buffer) == 1  # multi-copy routing
